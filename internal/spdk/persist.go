package spdk

import (
	"encoding/binary"
	"fmt"

	"aquila/internal/sim/engine"
)

// On-device metadata, as SPDK Blobstore keeps it: cluster 0 is reserved for
// the super block and blob metadata pages; Persist serializes every blob
// (id, size, cluster list, xattrs) and Load reconstructs the store — so an
// Aquila restart finds its files again.

const (
	persistMagic = 0x53424C42 // "SBLB"
	mdCapacity   = ClusterSize
)

// Persist writes the blobstore metadata to cluster 0.
func (bs *Blobstore) Persist(p *engine.Proc) {
	buf := make([]byte, 0, 4096)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], persistMagic)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(bs.nextID))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(bs.blobs)))
	buf = append(buf, tmp[:4]...)
	for id := BlobID(1); id < bs.nextID; id++ {
		b, ok := bs.blobs[id]
		if !ok {
			continue
		}
		binary.LittleEndian.PutUint64(tmp[:], uint64(b.ID))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], b.size)
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(b.clusters)))
		buf = append(buf, tmp[:4]...)
		for _, c := range b.clusters {
			binary.LittleEndian.PutUint64(tmp[:], c)
			buf = append(buf, tmp[:]...)
		}
		binary.LittleEndian.PutUint16(tmp[:2], uint16(len(b.xattrs)))
		buf = append(buf, tmp[:2]...)
		for _, k := range sortedKeys(b.xattrs) {
			v := b.xattrs[k]
			binary.LittleEndian.PutUint16(tmp[:2], uint16(len(k)))
			buf = append(buf, tmp[:2]...)
			buf = append(buf, k...)
			binary.LittleEndian.PutUint16(tmp[:2], uint16(len(v)))
			buf = append(buf, tmp[:2]...)
			buf = append(buf, v...)
		}
	}
	out := make([]byte, 4+len(buf))
	binary.LittleEndian.PutUint32(out, uint32(len(buf)))
	copy(out[4:], buf)
	if len(out) > mdCapacity {
		panic(fmt.Sprintf("spdk: metadata %d bytes exceeds the md cluster", len(out)))
	}
	bs.drv.Write(p, 0, out)
}

// LoadBlobstore reconstructs a persisted blobstore from the device.
func LoadBlobstore(p *engine.Proc, drv *Driver) (*Blobstore, error) {
	hdr := make([]byte, 4)
	drv.Read(p, 0, hdr)
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 || n > mdCapacity {
		return nil, fmt.Errorf("spdk: no persisted blobstore (md length %d)", n)
	}
	buf := make([]byte, n)
	drv.Read(p, 4, buf)
	if binary.LittleEndian.Uint32(buf) != persistMagic {
		return nil, fmt.Errorf("spdk: bad blobstore magic")
	}
	bs := &Blobstore{
		drv:     drv,
		blobs:   make(map[BlobID]*Blob),
		totalCl: drv.dev.Capacity() / ClusterSize,
		mdCost:  1500,
	}
	pos := 4
	bs.nextID = BlobID(binary.LittleEndian.Uint64(buf[pos:]))
	pos += 8
	count := int(binary.LittleEndian.Uint32(buf[pos:]))
	pos += 4
	used := map[uint64]bool{0: true} // md cluster
	for i := 0; i < count; i++ {
		b := &Blob{xattrs: make(map[string][]byte)}
		b.ID = BlobID(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
		b.size = binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		nc := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		for j := 0; j < nc; j++ {
			c := binary.LittleEndian.Uint64(buf[pos:])
			pos += 8
			b.clusters = append(b.clusters, c)
			used[c] = true
		}
		nx := int(binary.LittleEndian.Uint16(buf[pos:]))
		pos += 2
		for j := 0; j < nx; j++ {
			kl := int(binary.LittleEndian.Uint16(buf[pos:]))
			pos += 2
			k := string(buf[pos : pos+kl])
			pos += kl
			vl := int(binary.LittleEndian.Uint16(buf[pos:]))
			pos += 2
			v := append([]byte(nil), buf[pos:pos+vl]...)
			pos += vl
			b.xattrs[k] = v
		}
		bs.blobs[b.ID] = b
	}
	// Rebuild the free list from the complement of used clusters.
	for c := bs.totalCl; c > 0; c-- {
		if !used[c-1] {
			bs.freeCl = append(bs.freeCl, c-1)
		}
	}
	return bs, nil
}

// LoadFileMap rebuilds the name table from the persisted "name" xattrs.
func LoadFileMap(p *engine.Proc, bs *Blobstore) *FileMap {
	fm := NewFileMap(bs)
	for id, b := range bs.blobs {
		if name, ok := b.xattrs["name"]; ok {
			fm.names[string(name)] = id
		}
	}
	_ = p
	return fm
}

func sortedKeys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
