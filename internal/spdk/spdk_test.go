package spdk

import (
	"bytes"
	"testing"
	"testing/quick"

	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
)

const mib = 1 << 20

func newBS() (*engine.Engine, *Blobstore) {
	e := engine.New(engine.Config{NumCPUs: 4, Seed: 1})
	drv := NewDriver(device.NewNVMe(512*mib, device.DefaultNVMeConfig()))
	return e, NewBlobstore(drv)
}

func run1(e *engine.Engine, fn func(p *engine.Proc)) {
	e.Spawn(0, "t0", fn)
	e.Run()
}

func TestDriverPollingChargesBusyTime(t *testing.T) {
	e := engine.New(engine.Config{NumCPUs: 1, Seed: 1})
	drv := NewDriver(device.NewNVMe(16*mib, device.DefaultNVMeConfig()))
	var proc *engine.Proc
	proc = e.Spawn(0, "t", func(p *engine.Proc) {
		drv.Read(p, 0, make([]byte, 4096))
	})
	e.Run()
	// Polling means the wait is system (busy) time, not iowait.
	if proc.Accounted(engine.KindIOWait) != 0 {
		t.Errorf("SPDK read should not sleep: iowait=%d", proc.Accounted(engine.KindIOWait))
	}
	lat := device.DefaultNVMeConfig().ReadLatency
	if sys := proc.Accounted(engine.KindSystem); sys < lat {
		t.Errorf("system cycles %d < device latency %d", sys, lat)
	}
	if drv.PollCycles == 0 {
		t.Error("no poll cycles recorded")
	}
}

func TestBlobCreateResizeDelete(t *testing.T) {
	e, bs := newBS()
	run1(e, func(p *engine.Proc) {
		before := bs.FreeClusters()
		b := bs.Create(p, 3*mib)
		if b.Size() != 3*mib || b.Clusters() != 3 {
			t.Errorf("size=%d clusters=%d", b.Size(), b.Clusters())
		}
		if bs.FreeClusters() != before-3 {
			t.Errorf("free clusters = %d, want %d", bs.FreeClusters(), before-3)
		}
		bs.Resize(p, b, 5*mib)
		if b.Clusters() != 5 {
			t.Errorf("clusters after grow = %d", b.Clusters())
		}
		bs.Resize(p, b, 1*mib)
		if b.Clusters() != 1 {
			t.Errorf("clusters after shrink = %d", b.Clusters())
		}
		bs.Delete(p, b)
		if bs.FreeClusters() != before {
			t.Errorf("clusters leaked: %d != %d", bs.FreeClusters(), before)
		}
		if _, err := bs.Open(p, b.ID); err == nil {
			t.Error("open of deleted blob succeeded")
		}
	})
}

func TestBlobIORoundTrip(t *testing.T) {
	e, bs := newBS()
	run1(e, func(p *engine.Proc) {
		b := bs.Create(p, 4*mib)
		data := make([]byte, 2*mib)
		for i := range data {
			data[i] = byte(i * 7)
		}
		// Write crossing cluster boundaries.
		bs.WriteBlob(p, b, mib/2, data)
		got := make([]byte, len(data))
		bs.ReadBlob(p, b, mib/2, got)
		if !bytes.Equal(got, data) {
			t.Error("blob round trip mismatch")
		}
	})
}

func TestBlobClustersNeedNotBeContiguous(t *testing.T) {
	e, bs := newBS()
	run1(e, func(p *engine.Proc) {
		a := bs.Create(p, 1*mib)
		b := bs.Create(p, 1*mib)
		bs.Resize(p, a, 2*mib) // a's second cluster comes after b's
		data := []byte("spans the discontiguity")
		bs.WriteBlob(p, a, mib-8, data)
		got := make([]byte, len(data))
		bs.ReadBlob(p, a, mib-8, got)
		if !bytes.Equal(got, data) {
			t.Error("discontiguous blob I/O mismatch")
		}
		_ = b
	})
}

func TestXattrs(t *testing.T) {
	e, bs := newBS()
	run1(e, func(p *engine.Proc) {
		b := bs.Create(p, mib)
		bs.SetXattr(p, b, "k", []byte("v"))
		v, ok := bs.GetXattr(p, b, "k")
		if !ok || string(v) != "v" {
			t.Errorf("xattr = %q, %v", v, ok)
		}
		if _, ok := bs.GetXattr(p, b, "missing"); ok {
			t.Error("missing xattr found")
		}
	})
}

func TestFileMap(t *testing.T) {
	e, bs := newBS()
	fm := NewFileMap(bs)
	run1(e, func(p *engine.Proc) {
		b := fm.Create(p, "sst-000001", 64*mib)
		if fm.Open(p, "sst-000001") != b {
			t.Error("open returned different blob")
		}
		name, _ := bs.GetXattr(p, b, "name")
		if string(name) != "sst-000001" {
			t.Errorf("name xattr = %q", name)
		}
		fm.Delete(p, "sst-000001")
		if fm.Exists("sst-000001") {
			t.Error("file exists after delete")
		}
	})
}

// Property: blobstore cluster accounting is conserved across create/resize/
// delete sequences.
func TestClusterConservationProperty(t *testing.T) {
	check := func(sizes []uint8) bool {
		e, bs := newBS()
		total := bs.FreeClusters()
		ok := true
		run1(e, func(p *engine.Proc) {
			var blobs []*Blob
			used := uint64(0)
			for _, s := range sizes {
				sz := uint64(s%8) * mib
				if used+8 >= total {
					break
				}
				b := bs.Create(p, sz)
				blobs = append(blobs, b)
				used += uint64(b.Clusters())
				if bs.FreeClusters() != total-used {
					ok = false
				}
			}
			for _, b := range blobs {
				used -= uint64(b.Clusters())
				bs.Delete(p, b)
			}
			if bs.FreeClusters() != total {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBlobstorePersistAndLoad(t *testing.T) {
	e := engine.New(engine.Config{NumCPUs: 4, Seed: 1})
	drv := NewDriver(device.NewNVMe(512*mib, device.DefaultNVMeConfig()))
	bs := NewBlobstore(drv)
	fm := NewFileMap(bs)
	var wantData []byte
	run1(e, func(p *engine.Proc) {
		a := fm.Create(p, "table-a", 3*mib)
		fm.Create(p, "table-b", 1*mib)
		bs.SetXattr(p, a, "level", []byte("1"))
		wantData = make([]byte, 8192)
		for i := range wantData {
			wantData[i] = byte(i * 31)
		}
		bs.WriteBlob(p, a, mib+100, wantData)
		bs.Persist(p)
	})

	// "Restart": reconstruct everything from the device alone.
	e2 := engine.New(engine.Config{NumCPUs: 4, Seed: 2})
	run1(e2, func(p *engine.Proc) {
		bs2, err := LoadBlobstore(p, drv)
		if err != nil {
			t.Fatal(err)
		}
		fm2 := LoadFileMap(p, bs2)
		if !fm2.Exists("table-a") || !fm2.Exists("table-b") {
			t.Fatal("names lost across restart")
		}
		a := fm2.Open(p, "table-a")
		if a.Size() != 3*mib || a.Clusters() != 3 {
			t.Errorf("blob a: size=%d clusters=%d", a.Size(), a.Clusters())
		}
		if lvl, ok := bs2.GetXattr(p, a, "level"); !ok || string(lvl) != "1" {
			t.Error("xattr lost")
		}
		got := make([]byte, len(wantData))
		bs2.ReadBlob(p, a, mib+100, got)
		if !bytes.Equal(got, wantData) {
			t.Error("blob content lost across restart")
		}
		// Free-list reconstruction: allocating must not collide with
		// existing blobs or the md cluster.
		c := bs2.Create(p, 2*mib)
		for _, cl := range c.clusters {
			if cl == 0 {
				t.Error("allocated the metadata cluster")
			}
			for _, acl := range a.clusters {
				if cl == acl {
					t.Error("allocated a cluster owned by another blob")
				}
			}
		}
	})
}

func TestLoadBlobstoreOnBlankDeviceFails(t *testing.T) {
	e := engine.New(engine.Config{NumCPUs: 1, Seed: 1})
	drv := NewDriver(device.NewNVMe(64*mib, device.DefaultNVMeConfig()))
	run1(e, func(p *engine.Proc) {
		if _, err := LoadBlobstore(p, drv); err == nil {
			t.Error("expected error loading a blank device")
		}
	})
}
