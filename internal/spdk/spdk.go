// Package spdk reimplements the slice of the Storage Performance Development
// Kit that Aquila uses (§3.3): a polled-mode user-space NVMe driver that
// bypasses the kernel entirely, and Blobstore, a flat namespace of blobs with
// cluster-granular allocation, runtime create/resize/delete and extended
// attributes. Aquila layers a file abstraction over blobs (FileMap) and uses
// Blobstore's direct, unbuffered I/O path.
package spdk

import (
	"fmt"
	"sort"

	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
)

// ClusterSize is Blobstore's allocation unit (SPDK default: 1 MB).
const ClusterSize = 1 << 20

// Driver cost model (cycles): polled-mode submission and completion are a
// few hundred cycles each — no syscalls, no interrupts, no context switches.
const (
	submitCost   = 400
	completeCost = 300
)

// Driver is a user-space polled-mode NVMe driver bound to one device.
// The device must be dedicated to this process (§3.3: direct access requires
// devices not shared with other processes).
type Driver struct {
	dev *device.NVMe

	// Stats.
	Reads      uint64
	Writes     uint64
	PollCycles uint64
}

// NewDriver binds a driver to a dedicated NVMe device.
func NewDriver(dev *device.NVMe) *Driver {
	return &Driver{dev: dev}
}

// Device returns the underlying NVMe device.
func (d *Driver) Device() *device.NVMe { return d.dev }

// Read issues a read and polls for completion: the CPU stays busy (system
// time) until the device finishes — the polling cost the paper notes for
// kernel-bypass frameworks.
func (d *Driver) Read(p *engine.Proc, off uint64, buf []byte) {
	d.Reads++
	p.AdvanceSystem(submitCost)
	done := d.dev.Submit(p.Now(), len(buf), false)
	if done > p.Now() {
		d.PollCycles += done - p.Now()
		p.AdvanceSystem(done - p.Now()) // busy poll
	}
	p.AdvanceSystem(completeCost)
	d.dev.ReadAt(off, buf)
}

// Write issues a write and polls for completion.
func (d *Driver) Write(p *engine.Proc, off uint64, buf []byte) {
	d.Writes++
	d.dev.WriteAt(off, buf)
	p.AdvanceSystem(submitCost)
	done := d.dev.Submit(p.Now(), len(buf), true)
	d.dev.Persist(off, len(buf), done)
	if done > p.Now() {
		d.PollCycles += done - p.Now()
		p.AdvanceSystem(done - p.Now())
	}
	p.AdvanceSystem(completeCost)
}

// ReadTimed charges only the timing of a read (content handled by caller).
func (d *Driver) ReadTimed(p *engine.Proc, bytes int) {
	d.Reads++
	p.AdvanceSystem(submitCost)
	done := d.dev.Submit(p.Now(), bytes, false)
	if done > p.Now() {
		d.PollCycles += done - p.Now()
		p.AdvanceSystem(done - p.Now())
	}
	p.AdvanceSystem(completeCost)
}

// WriteAsync submits a write without polling for completion (io_uring-style
// deep submission queue, cf. internal/host/iouring): the caller pays
// submission plus a deferred completion-reap charge and receives the device
// completion cycle to wait on later, letting it queue further I/Os behind
// this one instead of busy-polling each in turn.
func (d *Driver) WriteAsync(p *engine.Proc, bytes int) uint64 {
	d.Writes++
	p.AdvanceSystem(submitCost + completeCost)
	return d.dev.Submit(p.Now(), bytes, true)
}

// WriteTimed charges only the timing of a write (content handled by caller)
// and returns the device completion cycle — the durability point the caller
// must pass to Store.Persist for the content it staged.
func (d *Driver) WriteTimed(p *engine.Proc, bytes int) uint64 {
	d.Writes++
	p.AdvanceSystem(submitCost)
	done := d.dev.Submit(p.Now(), bytes, true)
	if done > p.Now() {
		d.PollCycles += done - p.Now()
		p.AdvanceSystem(done - p.Now())
	}
	p.AdvanceSystem(completeCost)
	return done
}

// BlobID identifies a blob in the flat namespace.
type BlobID uint64

// Blob is one blob: a size, an ordered cluster list, and extended attributes.
type Blob struct {
	ID       BlobID
	size     uint64
	clusters []uint64 // cluster indices, logical order
	xattrs   map[string][]byte
	deleted  bool
}

// Size returns the blob's logical size in bytes.
func (b *Blob) Size() uint64 { return b.size }

// Clusters returns the number of clusters allocated.
func (b *Blob) Clusters() int { return len(b.clusters) }

// Blobstore is a flat namespace of blobs over a dedicated NVMe device,
// modeled after SPDK Blobstore with its direct (unbuffered) I/O path.
type Blobstore struct {
	drv     *Driver
	nextID  BlobID
	blobs   map[BlobID]*Blob
	freeCl  []uint64
	totalCl uint64
	mdCost  uint64 // metadata op cost in cycles
}

// NewBlobstore formats a blobstore over the driver's device.
func NewBlobstore(drv *Driver) *Blobstore {
	total := drv.dev.Capacity() / ClusterSize
	bs := &Blobstore{
		drv:     drv,
		nextID:  1,
		blobs:   make(map[BlobID]*Blob),
		totalCl: total,
		mdCost:  1500,
	}
	// Reverse order so low clusters are handed out first; cluster 0 is
	// reserved for the super block and blob metadata (see persist.go).
	for c := total; c > 1; c-- {
		bs.freeCl = append(bs.freeCl, c-1)
	}
	return bs
}

// FreeClusters returns the number of unallocated clusters.
func (bs *Blobstore) FreeClusters() uint64 { return uint64(len(bs.freeCl)) }

// Drv returns the underlying driver.
func (bs *Blobstore) Drv() *Driver { return bs.drv }

// SetSize updates a blob's logical size within its allocated clusters
// (append bookkeeping; use Resize to change the allocation).
func (bs *Blobstore) SetSize(b *Blob, size uint64) {
	if size > uint64(len(b.clusters))*ClusterSize {
		panic(fmt.Sprintf("spdk: SetSize %d beyond blob %d capacity %d",
			size, b.ID, uint64(len(b.clusters))*ClusterSize))
	}
	b.size = size
}

// Create allocates a new blob with the given size (rounded up to clusters).
func (bs *Blobstore) Create(p *engine.Proc, size uint64) *Blob {
	p.AdvanceSystem(bs.mdCost)
	b := &Blob{ID: bs.nextID, xattrs: make(map[string][]byte)}
	bs.nextID++
	bs.blobs[b.ID] = b
	bs.Resize(p, b, size)
	return b
}

// Open returns the blob with the given id.
func (bs *Blobstore) Open(p *engine.Proc, id BlobID) (*Blob, error) {
	p.AdvanceSystem(bs.mdCost)
	b, ok := bs.blobs[id]
	if !ok || b.deleted {
		return nil, fmt.Errorf("spdk: blob %d not found", id)
	}
	return b, nil
}

// Resize grows or shrinks a blob at runtime.
func (bs *Blobstore) Resize(p *engine.Proc, b *Blob, size uint64) {
	p.AdvanceSystem(bs.mdCost)
	want := int((size + ClusterSize - 1) / ClusterSize)
	for len(b.clusters) < want {
		if len(bs.freeCl) == 0 {
			panic("spdk: blobstore out of clusters")
		}
		c := bs.freeCl[len(bs.freeCl)-1]
		bs.freeCl = bs.freeCl[:len(bs.freeCl)-1]
		b.clusters = append(b.clusters, c)
	}
	for len(b.clusters) > want {
		c := b.clusters[len(b.clusters)-1]
		b.clusters = b.clusters[:len(b.clusters)-1]
		bs.freeCl = append(bs.freeCl, c)
		bs.drv.dev.Discard(c*ClusterSize, ClusterSize)
	}
	b.size = size
}

// Delete removes a blob, returning its clusters to the free pool.
func (bs *Blobstore) Delete(p *engine.Proc, b *Blob) {
	p.AdvanceSystem(bs.mdCost)
	bs.Resize(p, b, 0)
	b.deleted = true
	delete(bs.blobs, b.ID)
}

// SetXattr stores an extended attribute on the blob.
func (bs *Blobstore) SetXattr(p *engine.Proc, b *Blob, key string, val []byte) {
	p.AdvanceSystem(bs.mdCost)
	b.xattrs[key] = append([]byte(nil), val...)
}

// GetXattr fetches an extended attribute.
func (bs *Blobstore) GetXattr(p *engine.Proc, b *Blob, key string) ([]byte, bool) {
	p.AdvanceSystem(bs.mdCost / 4)
	v, ok := b.xattrs[key]
	return v, ok
}

// DevOff translates a blob offset to a device offset. The range must not
// cross a cluster boundary.
func (bs *Blobstore) DevOff(b *Blob, off uint64) uint64 {
	cl := off / ClusterSize
	if int(cl) >= len(b.clusters) {
		panic(fmt.Sprintf("spdk: blob %d offset %d beyond %d clusters", b.ID, off, len(b.clusters)))
	}
	return b.clusters[cl]*ClusterSize + off%ClusterSize
}

// ReadBlob reads from the blob through the direct path (no buffering).
func (bs *Blobstore) ReadBlob(p *engine.Proc, b *Blob, off uint64, buf []byte) {
	bs.checkRange(b, off, len(buf))
	for n := 0; n < len(buf); {
		co := int((off + uint64(n)) % ClusterSize)
		chunk := ClusterSize - co
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		bs.drv.Read(p, bs.DevOff(b, off+uint64(n)), buf[n:n+chunk])
		n += chunk
	}
}

// WriteBlob writes to the blob through the direct path.
func (bs *Blobstore) WriteBlob(p *engine.Proc, b *Blob, off uint64, buf []byte) {
	bs.checkRange(b, off, len(buf))
	for n := 0; n < len(buf); {
		co := int((off + uint64(n)) % ClusterSize)
		chunk := ClusterSize - co
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		bs.drv.Write(p, bs.DevOff(b, off+uint64(n)), buf[n:n+chunk])
		n += chunk
	}
}

func (bs *Blobstore) checkRange(b *Blob, off uint64, n int) {
	if off+uint64(n) > uint64(len(b.clusters))*ClusterSize {
		panic(fmt.Sprintf("spdk: blob %d access [%d,%d) beyond capacity %d",
			b.ID, off, off+uint64(n), uint64(len(b.clusters))*ClusterSize))
	}
}

// FileMap is Aquila's transparent file-to-blob translation (§3.3): it
// intercepts open/creat-style calls and maps names to blobs.
type FileMap struct {
	bs    *Blobstore
	names map[string]BlobID
}

// NewFileMap creates an empty file table over a blobstore.
func NewFileMap(bs *Blobstore) *FileMap {
	return &FileMap{bs: bs, names: make(map[string]BlobID)}
}

// Blobstore returns the underlying blobstore.
func (fm *FileMap) Blobstore() *Blobstore { return fm.bs }

// Create makes a named blob of the given size.
func (fm *FileMap) Create(p *engine.Proc, name string, size uint64) *Blob {
	if _, ok := fm.names[name]; ok {
		panic(fmt.Sprintf("spdk: create of existing file %q", name))
	}
	b := fm.bs.Create(p, size)
	fm.bs.SetXattr(p, b, "name", []byte(name))
	fm.names[name] = b.ID
	return b
}

// Open resolves a name to its blob.
func (fm *FileMap) Open(p *engine.Proc, name string) *Blob {
	id, ok := fm.names[name]
	if !ok {
		panic(fmt.Sprintf("spdk: open of missing file %q", name))
	}
	b, err := fm.bs.Open(p, id)
	if err != nil {
		panic(err)
	}
	return b
}

// Exists reports whether a name is bound (no cost: test helper).
func (fm *FileMap) Exists(name string) bool {
	_, ok := fm.names[name]
	return ok
}

// Delete unbinds a name and deletes its blob.
func (fm *FileMap) Delete(p *engine.Proc, name string) {
	id, ok := fm.names[name]
	if !ok {
		return
	}
	b, err := fm.bs.Open(p, id)
	if err == nil {
		fm.bs.Delete(p, b)
	}
	delete(fm.names, name)
}

// Names returns the bound names in sorted order.
func (fm *FileMap) Names() []string {
	out := make([]string, 0, len(fm.names))
	for n := range fm.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
