package graph

import (
	"testing"

	"aquila/internal/host"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
)

const mib = 1 << 20

func memHeapWorld() (*engine.Engine, Heap) {
	e := engine.New(engine.Config{NumCPUs: 8, Seed: 1})
	return e, NewMemHeap(64 * mib)
}

func mappedHeapWorld(cacheBytes uint64) (*engine.Engine, Heap) {
	e := engine.New(engine.Config{NumCPUs: 8, Seed: 1})
	disk := host.NewPMemDisk("pmem0", device.NewPMem(256*mib, device.DefaultPMemConfig()))
	os := host.NewOS(e, disk, cacheBytes)
	var h Heap
	e.Spawn(0, "setup", func(p *engine.Proc) {
		f := os.FS.Create(p, "heap", 128*mib)
		h = NewMappedHeap(os.Mmap(p, f, 128*mib))
	})
	e.Run()
	return e, h
}

func TestHeapTypedAccess(t *testing.T) {
	e, h := memHeapWorld()
	e.Spawn(0, "t", func(p *engine.Proc) {
		off := h.Alloc(64)
		StoreU32(p, h, off, 0xDEADBEEF)
		StoreU64(p, h, off+8, 0x123456789ABCDEF0)
		if got := LoadU32(p, h, off); got != 0xDEADBEEF {
			t.Errorf("u32 = %#x", got)
		}
		if got := LoadU64(p, h, off+8); got != 0x123456789ABCDEF0 {
			t.Errorf("u64 = %#x", got)
		}
	})
	e.Run()
}

func TestHeapAllocAlignment(t *testing.T) {
	_, h := memHeapWorld()
	a := h.Alloc(1)
	b := h.Alloc(100)
	if a%64 != 0 || b%64 != 0 {
		t.Errorf("allocations not 64-byte aligned: %d %d", a, b)
	}
	if b-a < 64 {
		t.Error("allocations overlap")
	}
}

func TestRMATDeterministicAndSkewed(t *testing.T) {
	cfg := RMATConfig{Vertices: 1024, EdgeFactor: 10, Seed: 3}
	a := RMAT(cfg)
	b := RMAT(cfg)
	if len(a) != len(b) || len(a) != 10240 {
		t.Fatalf("lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic generation")
		}
	}
	// Degree skew: max out-degree far above average (power law).
	deg := make(map[uint32]int)
	for _, e := range a {
		deg[e[0]]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 50 { // average is 10
		t.Errorf("max degree %d too uniform for R-MAT", max)
	}
}

func TestSymmetrize(t *testing.T) {
	edges := [][2]uint32{{1, 2}, {3, 4}}
	sym := Symmetrize(edges)
	if len(sym) != 4 {
		t.Fatalf("len = %d", len(sym))
	}
	if sym[1] != [2]uint32{2, 1} || sym[3] != [2]uint32{4, 3} {
		t.Fatalf("sym = %v", sym)
	}
}

func TestBuildCSRAndNeighbors(t *testing.T) {
	e, h := memHeapWorld()
	e.Spawn(0, "t", func(p *engine.Proc) {
		edges := [][2]uint32{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {0, 3}}
		g := Build(p, h, 4, edges)
		if g.M != 5 {
			t.Fatalf("m = %d", g.M)
		}
		if got := g.Degree(p, 0); got != 3 {
			t.Errorf("deg(0) = %d", got)
		}
		nbrs := g.Neighbors(p, 0, nil)
		want := []uint32{1, 2, 3}
		if len(nbrs) != 3 {
			t.Fatalf("neighbors(0) = %v", nbrs)
		}
		for i := range want {
			if nbrs[i] != want[i] {
				t.Fatalf("neighbors(0) = %v, want %v", nbrs, want)
			}
		}
		if got := g.Degree(p, 3); got != 0 {
			t.Errorf("deg(3) = %d", got)
		}
	})
	e.Run()
}

// bfsAgainstReference checks a parallel BFS result against a sequential one:
// same reachable set, and every parent edge exists with level(parent) ==
// level(child) - 1.
func bfsAgainstReference(t *testing.T, e *engine.Engine, h Heap, n uint32, edges [][2]uint32, threads int) BFSResult {
	t.Helper()
	var g *Graph
	e.Spawn(0, "build", func(p *engine.Proc) {
		g = Build(p, h, n, edges)
	})
	e.Run()
	res := RunBFS(e, g, 0, threads)
	ref := ReferenceBFS(n, edges, 0)
	wantVisited := uint64(0)
	for _, l := range ref {
		if l >= 0 {
			wantVisited++
		}
	}
	if res.Visited != wantVisited {
		t.Fatalf("visited %d, want %d", res.Visited, wantVisited)
	}
	edgeSet := make(map[[2]uint32]bool, len(edges))
	for _, ed := range edges {
		edgeSet[ed] = true
	}
	e.Spawn(0, "verify", func(p *engine.Proc) {
		for v := uint32(0); v < n; v++ {
			par := Parent(p, h, res.ParentsOff, v)
			if ref[v] < 0 {
				if par != unvisited {
					t.Errorf("unreachable %d has parent %d", v, par)
				}
				continue
			}
			if par == unvisited {
				t.Errorf("reachable %d unvisited", v)
				continue
			}
			if v == 0 {
				continue
			}
			if !edgeSet[[2]uint32{par, v}] {
				t.Errorf("parent edge (%d,%d) not in graph", par, v)
			}
			if ref[par] != ref[v]-1 {
				t.Errorf("vertex %d: parent %d at level %d, v at %d", v, par, ref[par], ref[v])
			}
		}
	})
	e.Run()
	return res
}

func TestBFSCorrectSingleThread(t *testing.T) {
	e, h := memHeapWorld()
	edges := Symmetrize(RMAT(RMATConfig{Vertices: 512, EdgeFactor: 8, Seed: 7}))
	bfsAgainstReference(t, e, h, 512, edges, 1)
}

func TestBFSCorrectParallel(t *testing.T) {
	e, h := memHeapWorld()
	edges := Symmetrize(RMAT(RMATConfig{Vertices: 512, EdgeFactor: 8, Seed: 7}))
	res := bfsAgainstReference(t, e, h, 512, edges, 7)
	if res.Rounds == 0 || res.ElapsedCycles == 0 {
		t.Error("no work recorded")
	}
}

func TestBFSOverMappedHeap(t *testing.T) {
	e, h := mappedHeapWorld(32 * mib)
	edges := Symmetrize(RMAT(RMATConfig{Vertices: 1024, EdgeFactor: 8, Seed: 9}))
	bfsAgainstReference(t, e, h, 1024, edges, 4)
}

func TestBFSMappedHeapUnderMemoryPressure(t *testing.T) {
	// Cache far smaller than the graph: evictions in the BFS loop.
	e, h := mappedHeapWorld(1 * mib)
	edges := Symmetrize(RMAT(RMATConfig{Vertices: 2048, EdgeFactor: 10, Seed: 11}))
	bfsAgainstReference(t, e, h, 2048, edges, 4)
}

func TestBFSParallelSpeedup(t *testing.T) {
	edges := Symmetrize(RMAT(RMATConfig{Vertices: 2048, EdgeFactor: 10, Seed: 13}))
	elapsed := func(threads int) uint64 {
		e, h := memHeapWorld()
		var g *Graph
		e.Spawn(0, "build", func(p *engine.Proc) {
			g = Build(p, h, 2048, edges)
		})
		e.Run()
		return RunBFS(e, g, 0, threads).ElapsedCycles
	}
	t1 := elapsed(1)
	t4 := elapsed(4)
	// Small graphs have short rounds and serial merge overhead; require a
	// 1.5x speedup at 4 threads (larger graphs in the harness scale better).
	if float64(t4) >= float64(t1)/1.5 {
		t.Errorf("4 threads (%d) not at least 1.5x faster than 1 (%d)", t4, t1)
	}
}
