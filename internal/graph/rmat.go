package graph

import "math/rand"

// RMATConfig parameterizes the Chakrabarti et al. R-MAT generator used in
// §6.2 (the paper: 100 M vertices, directed edges = 10x vertices).
type RMATConfig struct {
	// Vertices is rounded up to a power of two internally.
	Vertices uint32
	// EdgeFactor is edges-per-vertex (paper: 10).
	EdgeFactor int
	// Seed makes generation deterministic.
	Seed int64
	// A, B, C are the standard R-MAT quadrant probabilities
	// (defaults 0.57, 0.19, 0.19; D = 1-A-B-C).
	A, B, C float64
}

// RMAT generates directed edges (u, v) per the recursive matrix model.
// Self-loops and duplicates are kept, as Ligra's rMatGraph does before
// symmetrization.
func RMAT(cfg RMATConfig) [][2]uint32 {
	if cfg.EdgeFactor == 0 {
		cfg.EdgeFactor = 10
	}
	if cfg.A == 0 && cfg.B == 0 && cfg.C == 0 {
		cfg.A, cfg.B, cfg.C = 0.57, 0.19, 0.19
	}
	levels := 0
	for 1<<levels < int(cfg.Vertices) {
		levels++
	}
	n := uint32(1) << levels
	m := int(cfg.Vertices) * cfg.EdgeFactor
	rng := rand.New(rand.NewSource(cfg.Seed))
	edges := make([][2]uint32, 0, m)
	ab := cfg.A + cfg.B
	abc := ab + cfg.C
	for len(edges) < m {
		var u, v uint32
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: no bits set
			case r < ab:
				v |= 1 << l
			case r < abc:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u < cfg.Vertices && v < cfg.Vertices {
			edges = append(edges, [2]uint32{u, v})
		}
	}
	_ = n
	return edges
}

// Symmetrize returns the union of edges and their reverses (Ligra's
// symmetric graphs, which BFS direction-switching needs).
func Symmetrize(edges [][2]uint32) [][2]uint32 {
	out := make([][2]uint32, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e, [2]uint32{e[1], e[0]})
	}
	return out
}
