package graph

import (
	"encoding/binary"
	"fmt"

	"aquila/internal/sim/engine"
)

// unvisited marks a vertex with no BFS parent yet.
const unvisited = ^uint32(0)

// BFSResult reports one BFS run.
type BFSResult struct {
	Rounds        int
	Visited       uint64
	ElapsedCycles uint64
	// ParentsOff is the heap offset of the parents array (uint32 per
	// vertex; unvisited = 0xffffffff).
	ParentsOff uint64
	// Acct aggregates worker cycle accounting by kind (user, system,
	// iowait, lockwait) for the execution-time breakdown of Fig 6(c).
	Acct [4]uint64
}

// RunBFS executes a frontier-based BFS with Ligra's sparse/dense direction
// switching over `threads` simulated threads. The graph and the parents
// array live in g's heap; with a mapped heap every access runs through the
// mmio path. The engine must be idle (no running simulation) when called.
func RunBFS(e *engine.Engine, g *Graph, src uint32, threads int) BFSResult {
	if threads < 1 {
		threads = 1
	}
	var res BFSResult
	var workers []*engine.Proc
	mainCPU := e.NumCPUs() - 1
	workerCPU := func(i int) int {
		if threads < e.NumCPUs() {
			return i % (e.NumCPUs() - 1)
		}
		return i % e.NumCPUs()
	}

	e.Spawn(mainCPU, "bfs-main", func(p *engine.Proc) {
		start := p.Now()
		n := g.N
		parentsOff := g.H.Alloc(uint64(n) * 4)
		res.ParentsOff = parentsOff
		// Initialize parents to unvisited with bulk sequential stores.
		initChunk := make([]byte, 1<<20)
		for i := range initChunk {
			initChunk[i] = 0xff
		}
		total := uint64(n) * 4
		for off := uint64(0); off < total; off += uint64(len(initChunk)) {
			end := off + uint64(len(initChunk))
			if end > total {
				end = total
			}
			g.H.Store(p, parentsOff+off, initChunk[:end-off])
		}
		StoreU32(p, g.H, parentsOff+uint64(src)*4, src)

		// claimed is the frontier-dedup bitmap (transient state Ligra
		// keeps in malloc'd memory; modeled in Go memory and charged
		// via the per-step costs below).
		claimed := make([]uint64, (n+63)/64)
		claim := func(v uint32) bool {
			w, b := v/64, uint64(1)<<(v%64)
			if claimed[w]&b != 0 {
				return false
			}
			claimed[w] |= b
			return true
		}
		claim(src)

		frontier := NewSparseSubset(n, []uint32{src})
		res.Visited = 1
		denseThreshold := g.M / 20

		for frontier.Len() > 0 {
			res.Rounds++
			useDense := frontier.Len()*10 > uint64(denseThreshold) && frontier.Len() > uint64(threads)
			locals := make([][]uint32, threads)
			wg := engine.NewWaitGroup(e, fmt.Sprintf("bfs-round-%d", res.Rounds))
			wg.Add(threads)

			if useDense {
				frontier.toDense()
				per := (n + uint32(threads) - 1) / uint32(threads)
				for t := 0; t < threads; t++ {
					t := t
					lo := uint32(t) * per
					hi := lo + per
					if hi > n {
						hi = n
					}
					w := e.SpawnAt(workerCPU(t), "bfs-w", p.Now(), func(wp *engine.Proc) {
						var scratch []uint32
						for v := lo; v < hi; v++ {
							wp.AdvanceUser(8)
							if claimed[v/64]&(1<<(v%64)) != 0 {
								continue
							}
							nbrs := g.Neighbors(wp, v, scratch)
							scratch = nbrs
							for _, u := range nbrs {
								wp.AdvanceUser(12)
								if frontier.Has(u) {
									if claim(v) {
										StoreU32(wp, g.H, parentsOff+uint64(v)*4, u)
										locals[t] = append(locals[t], v)
									}
									break
								}
							}
						}
						// Not deferred: a crash must unwind this worker without
						// releasing the round's waitgroup (crashclean).
						wg.Done(wp)
					})
					workers = append(workers, w)
				}
			} else {
				sparse := frontier.sparse
				per := (len(sparse) + threads - 1) / threads
				for t := 0; t < threads; t++ {
					t := t
					lo := t * per
					hi := lo + per
					if lo > len(sparse) {
						lo = len(sparse)
					}
					if hi > len(sparse) {
						hi = len(sparse)
					}
					w := e.SpawnAt(workerCPU(t), "bfs-w", p.Now(), func(wp *engine.Proc) {
						var scratch []uint32
						for _, u := range sparse[lo:hi] {
							nbrs := g.Neighbors(wp, u, scratch)
							scratch = nbrs
							for _, v := range nbrs {
								wp.AdvanceUser(12)
								if claim(v) {
									StoreU32(wp, g.H, parentsOff+uint64(v)*4, u)
									locals[t] = append(locals[t], v)
								}
							}
						}
						// Not deferred: a crash must unwind this worker without
						// releasing the round's waitgroup (crashclean).
						wg.Done(wp)
					})
					workers = append(workers, w)
				}
			}
			wg.Wait(p)
			var next []uint32
			for _, l := range locals {
				next = append(next, l...)
			}
			p.AdvanceUser(uint64(len(next))/8 + 10)
			res.Visited += uint64(len(next))
			frontier = NewSparseSubset(n, next)
		}
		res.ElapsedCycles = p.Now() - start
	})
	e.Run()
	for _, w := range workers {
		for k := 0; k < 4; k++ {
			res.Acct[k] += w.Accounted(engine.Kind(k))
		}
	}
	return res
}

// Parent reads a vertex's BFS parent from the heap.
func Parent(p *engine.Proc, h Heap, parentsOff uint64, v uint32) uint32 {
	var b [4]byte
	h.Load(p, parentsOff+uint64(v)*4, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// ReferenceBFS computes reachability and BFS levels in plain Go for
// verification.
func ReferenceBFS(n uint32, edges [][2]uint32, src uint32) []int32 {
	adj := make([][]uint32, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := []uint32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if level[v] == -1 {
				level[v] = level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return level
}
