package graph

import (
	"encoding/binary"
	"fmt"
	"math"

	"aquila/internal/sim/engine"
)

// Additional Ligra algorithms beyond BFS: PageRank and label-propagation
// Connected Components. Like BFS, all per-vertex state lives in the Heap, so
// with a mapped heap every access exercises the mmio path under study; both
// follow Ligra's vertexMap/edgeMap structure with parallel supersteps.

// parallelFor runs fn over [0, n) split across `threads` simulated workers
// spawned from p's engine, and waits for all of them.
func parallelFor(e *engine.Engine, p *engine.Proc, name string, n uint32, threads int,
	fn func(wp *engine.Proc, lo, hi uint32)) {
	if threads < 1 {
		threads = 1
	}
	wg := engine.NewWaitGroup(e, name)
	wg.Add(threads)
	per := (n + uint32(threads) - 1) / uint32(threads)
	workerCPU := func(i int) int {
		if threads < e.NumCPUs() {
			return i % (e.NumCPUs() - 1)
		}
		return i % e.NumCPUs()
	}
	for t := 0; t < threads; t++ {
		lo := uint32(t) * per
		hi := lo + per
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		e.SpawnAt(workerCPU(t), name, p.Now(), func(wp *engine.Proc) {
			fn(wp, lo, hi)
			// Not deferred: a crash must unwind this worker without
			// releasing the round's waitgroup (crashclean).
			wg.Done(wp)
		})
	}
	wg.Wait(p)
}

// PageRankResult reports one PageRank run.
type PageRankResult struct {
	Iterations    int
	ElapsedCycles uint64
	// RanksOff is the heap offset of the float64 rank array.
	RanksOff uint64
	// Delta is the L1 change of the final iteration.
	Delta float64
}

// RunPageRank executes power-iteration PageRank (damping 0.85) until the L1
// delta drops below eps or maxIter is reached. Rank vectors live in the heap
// as float64 bits; the transition uses out-edges, so the graph should be
// symmetrized for in-place pull semantics (as Ligra's PageRank examples do).
func RunPageRank(e *engine.Engine, g *Graph, threads, maxIter int, eps float64) PageRankResult {
	var res PageRankResult
	mainCPU := e.NumCPUs() - 1
	e.Spawn(mainCPU, "pagerank-main", func(p *engine.Proc) {
		start := p.Now()
		n := g.N
		cur := g.H.Alloc(uint64(n) * 8)
		next := g.H.Alloc(uint64(n) * 8)
		res.RanksOff = cur
		init := 1.0 / float64(n)
		// Initialize rank vector with bulk stores.
		buf := make([]byte, 8*4096)
		for i := 0; i < len(buf); i += 8 {
			binary.LittleEndian.PutUint64(buf[i:], math.Float64bits(init))
		}
		for off := uint64(0); off < uint64(n)*8; off += uint64(len(buf)) {
			end := off + uint64(len(buf))
			if end > uint64(n)*8 {
				end = uint64(n) * 8
			}
			g.H.Store(p, cur+off, buf[:end-off])
		}

		const damping = 0.85
		for iter := 0; iter < maxIter; iter++ {
			res.Iterations = iter + 1
			deltas := make([]float64, threads)
			parallelFor(e, p, fmt.Sprintf("pr-%d", iter), n, threads,
				func(wp *engine.Proc, lo, hi uint32) {
					var scratch []uint32
					var local float64
					tid := -1
					for v := lo; v < hi; v++ {
						// Pull: sum rank/deg over neighbors.
						nbrs := g.Neighbors(wp, v, scratch)
						scratch = nbrs
						sum := 0.0
						for _, u := range nbrs {
							ru := math.Float64frombits(LoadU64(wp, g.H, cur+uint64(u)*8))
							du := g.Degree(wp, u)
							if du > 0 {
								sum += ru / float64(du)
							}
							wp.AdvanceUser(6)
						}
						newRank := (1-damping)/float64(n) + damping*sum
						old := math.Float64frombits(LoadU64(wp, g.H, cur+uint64(v)*8))
						StoreU64(wp, g.H, next+uint64(v)*8, math.Float64bits(newRank))
						local += math.Abs(newRank - old)
						wp.AdvanceUser(14)
					}
					// Attribute the local delta slot by range start.
					tid = int(lo / ((n + uint32(threads) - 1) / uint32(threads)))
					if tid >= 0 && tid < threads {
						deltas[tid] += local
					}
				})
			res.Delta = 0
			for _, d := range deltas {
				res.Delta += d
			}
			cur, next = next, cur
			res.RanksOff = cur
			if res.Delta < eps {
				break
			}
		}
		res.ElapsedCycles = p.Now() - start
	})
	e.Run()
	return res
}

// Rank reads one vertex's final PageRank value.
func Rank(p *engine.Proc, h Heap, ranksOff uint64, v uint32) float64 {
	return math.Float64frombits(LoadU64(p, h, ranksOff+uint64(v)*8))
}

// CCResult reports one Connected Components run.
type CCResult struct {
	Rounds        int
	Components    uint64
	ElapsedCycles uint64
	// LabelsOff is the heap offset of the uint32 label array.
	LabelsOff uint64
}

// RunCC computes connected components by label propagation (Ligra's
// "Components"): every vertex adopts the minimum label among itself and its
// neighbors until a fixed point. The graph must be symmetric.
func RunCC(e *engine.Engine, g *Graph, threads int) CCResult {
	var res CCResult
	mainCPU := e.NumCPUs() - 1
	e.Spawn(mainCPU, "cc-main", func(p *engine.Proc) {
		start := p.Now()
		n := g.N
		labels := g.H.Alloc(uint64(n) * 4)
		res.LabelsOff = labels
		// labels[v] = v initially.
		buf := make([]byte, 4*4096)
		for base := uint32(0); base < n; base += uint32(len(buf) / 4) {
			cnt := uint32(len(buf) / 4)
			if base+cnt > n {
				cnt = n - base
			}
			for i := uint32(0); i < cnt; i++ {
				binary.LittleEndian.PutUint32(buf[i*4:], base+i)
			}
			g.H.Store(p, labels+uint64(base)*4, buf[:cnt*4])
		}

		changedFlags := make([]bool, threads)
		for {
			res.Rounds++
			for i := range changedFlags {
				changedFlags[i] = false
			}
			parallelFor(e, p, fmt.Sprintf("cc-%d", res.Rounds), n, threads,
				func(wp *engine.Proc, lo, hi uint32) {
					var scratch []uint32
					tid := int(lo / ((n + uint32(threads) - 1) / uint32(threads)))
					for v := lo; v < hi; v++ {
						mine := LoadU32(wp, g.H, labels+uint64(v)*4)
						best := mine
						nbrs := g.Neighbors(wp, v, scratch)
						scratch = nbrs
						for _, u := range nbrs {
							lu := LoadU32(wp, g.H, labels+uint64(u)*4)
							if lu < best {
								best = lu
							}
							wp.AdvanceUser(5)
						}
						if best < mine {
							StoreU32(wp, g.H, labels+uint64(v)*4, best)
							if tid >= 0 && tid < threads {
								changedFlags[tid] = true
							}
						}
						wp.AdvanceUser(8)
					}
				})
			changed := false
			for _, c := range changedFlags {
				changed = changed || c
			}
			if !changed {
				break
			}
		}
		// Count distinct labels.
		seen := make(map[uint32]struct{})
		for v := uint32(0); v < n; v++ {
			seen[LoadU32(p, g.H, labels+uint64(v)*4)] = struct{}{}
		}
		res.Components = uint64(len(seen))
		res.ElapsedCycles = p.Now() - start
	})
	e.Run()
	return res
}

// ReferenceCC computes component counts in plain Go for verification.
func ReferenceCC(n uint32, edges [][2]uint32) uint64 {
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		a, b := find(e[0]), find(e[1])
		if a != b {
			parent[a] = b
		}
	}
	seen := make(map[uint32]struct{})
	for v := uint32(0); v < n; v++ {
		seen[find(v)] = struct{}{}
	}
	return uint64(len(seen))
}
