package graph

import (
	"fmt"
	"math"

	"aquila/internal/sim/engine"
)

// BCResult reports one betweenness-centrality run.
type BCResult struct {
	Rounds        int
	ElapsedCycles uint64
	// ScoresOff is the heap offset of the float64 dependency scores.
	ScoresOff uint64
}

// RunBC computes single-source betweenness-centrality contributions from
// `src` with Brandes' algorithm, Ligra-style: a forward BFS phase recording
// per-level frontiers and shortest-path counts, then a backward dependency
// accumulation sweep. All per-vertex state (path counts, dependencies,
// scores) lives in the heap, so a mapped heap exercises the mmio path for
// both the read-heavy forward phase and the write-heavy backward phase.
// The graph must be symmetric.
func RunBC(e *engine.Engine, g *Graph, src uint32, threads int) BCResult {
	if threads < 1 {
		threads = 1
	}
	var res BCResult
	mainCPU := e.NumCPUs() - 1
	e.Spawn(mainCPU, "bc-main", func(p *engine.Proc) {
		start := p.Now()
		n := g.N
		sigma := g.H.Alloc(uint64(n) * 8)  // shortest-path counts (float64)
		delta := g.H.Alloc(uint64(n) * 8)  // dependencies
		scores := g.H.Alloc(uint64(n) * 8) // output
		res.ScoresOff = scores
		zero := make([]byte, 8*1024)
		for _, region := range []uint64{sigma, delta, scores} {
			for off := uint64(0); off < uint64(n)*8; off += uint64(len(zero)) {
				end := off + uint64(len(zero))
				if end > uint64(n)*8 {
					end = uint64(n) * 8
				}
				g.H.Store(p, region+off, zero[:end-off])
			}
		}
		StoreU64(p, g.H, sigma+uint64(src)*8, math.Float64bits(1))

		level := make([]int32, n) // transient state (Ligra keeps in DRAM)
		for i := range level {
			level[i] = -1
		}
		level[src] = 0
		frontier := []uint32{src}
		var levels [][]uint32
		// acc accumulates per-round contributions in transient memory:
		// `acc[v] += x` is a plain Go statement with no simulated yield
		// inside, so concurrent workers cannot lose updates; the totals
		// are committed to the heap once per round.
		acc := make([]float64, n)
		// Forward phase: BFS levels with path counting.
		for len(frontier) > 0 {
			res.Rounds++
			levels = append(levels, frontier)
			depth := int32(len(levels))
			next := make([][]uint32, threads)
			parallelFor(e, p, fmt.Sprintf("bc-fwd-%d", res.Rounds),
				uint32(len(frontier)), threads,
				func(wp *engine.Proc, lo, hi uint32) {
					tid := int(lo) * threads / maxInt(len(frontier), 1)
					if tid >= threads {
						tid = threads - 1
					}
					var scratch []uint32
					for _, u := range frontier[lo:hi] {
						su := math.Float64frombits(LoadU64(wp, g.H, sigma+uint64(u)*8))
						nbrs := g.Neighbors(wp, u, scratch)
						scratch = nbrs
						for _, v := range nbrs {
							wp.AdvanceUser(10)
							if level[v] == -1 {
								level[v] = depth
								next[tid] = append(next[tid], v)
							}
							if level[v] == depth {
								acc[v] += su // yield-free accumulate
							}
						}
					}
				})
			frontier = nil
			for _, l := range next {
				frontier = append(frontier, l...)
			}
			// Commit this round's path counts to the heap.
			for _, v := range frontier {
				StoreU64(p, g.H, sigma+uint64(v)*8, math.Float64bits(acc[v]))
				acc[v] = 0
			}
		}
		// Backward phase: dependency accumulation, deepest level first,
		// with the same yield-free transient accumulation.
		for d := len(levels) - 1; d >= 1; d-- {
			verts := levels[d]
			parallelFor(e, p, fmt.Sprintf("bc-bwd-%d", d),
				uint32(len(verts)), threads,
				func(wp *engine.Proc, lo, hi uint32) {
					var scratch []uint32
					for _, v := range verts[lo:hi] {
						sv := math.Float64frombits(LoadU64(wp, g.H, sigma+uint64(v)*8))
						dv := math.Float64frombits(LoadU64(wp, g.H, delta+uint64(v)*8))
						nbrs := g.Neighbors(wp, v, scratch)
						scratch = nbrs
						for _, u := range nbrs {
							wp.AdvanceUser(12)
							if level[u] != int32(d)-1 || sv == 0 {
								continue
							}
							su := math.Float64frombits(LoadU64(wp, g.H, sigma+uint64(u)*8))
							acc[u] += su / sv * (1 + dv) // yield-free
						}
						if v != src {
							StoreU64(wp, g.H, scores+uint64(v)*8, math.Float64bits(dv))
						}
					}
				})
			// Commit dependencies for the next (shallower) level.
			for _, u := range levels[d-1] {
				du := math.Float64frombits(LoadU64(p, g.H, delta+uint64(u)*8))
				StoreU64(p, g.H, delta+uint64(u)*8, math.Float64bits(du+acc[u]))
				acc[u] = 0
			}
		}
		res.ElapsedCycles = p.Now() - start
	})
	e.Run()
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ReferenceBC computes single-source Brandes dependencies in plain Go.
func ReferenceBC(n uint32, edges [][2]uint32, src uint32) []float64 {
	adj := make([][]uint32, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	sigma := make([]float64, n)
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	sigma[src] = 1
	level[src] = 0
	var order []uint32
	queue := []uint32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range adj[u] {
			if level[v] == -1 {
				level[v] = level[u] + 1
				queue = append(queue, v)
			}
			if level[v] == level[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	delta := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, u := range adj[v] {
			if level[u] == level[v]-1 && sigma[v] != 0 {
				delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
			}
		}
	}
	delta[src] = 0
	return delta
}
