package graph

import (
	"math"
	"testing"

	"aquila/internal/sim/engine"
)

func TestPageRankSumsToOne(t *testing.T) {
	e, h := memHeapWorld()
	// A ring guarantees no dangling vertices (which would leak rank mass).
	edges := RMAT(RMATConfig{Vertices: 256, EdgeFactor: 8, Seed: 5})
	for v := uint32(0); v < 256; v++ {
		edges = append(edges, [2]uint32{v, (v + 1) % 256})
	}
	edges = Symmetrize(edges)
	var g *Graph
	e.Spawn(0, "build", func(p *engine.Proc) { g = Build(p, h, 256, edges) })
	e.Run()
	res := RunPageRank(e, g, 4, 30, 1e-6)
	if res.Iterations == 0 {
		t.Fatal("no iterations")
	}
	var sum float64
	e.Spawn(0, "check", func(p *engine.Proc) {
		for v := uint32(0); v < 256; v++ {
			r := Rank(p, h, res.RanksOff, v)
			if r < 0 || r > 1 {
				t.Fatalf("rank[%d] = %v out of range", v, r)
			}
			sum += r
		}
	})
	e.Run()
	// Dangling-free symmetric graph: ranks sum to ~1.
	if math.Abs(sum-1.0) > 0.02 {
		t.Errorf("rank sum = %v, want ~1", sum)
	}
}

func TestPageRankHubOutranksLeaf(t *testing.T) {
	e, h := memHeapWorld()
	// Star: vertex 0 connected to all others (symmetric).
	var edges [][2]uint32
	for v := uint32(1); v < 64; v++ {
		edges = append(edges, [2]uint32{0, v}, [2]uint32{v, 0})
	}
	var g *Graph
	e.Spawn(0, "build", func(p *engine.Proc) { g = Build(p, h, 64, edges) })
	e.Run()
	res := RunPageRank(e, g, 2, 50, 1e-9)
	var hub, leaf float64
	e.Spawn(0, "check", func(p *engine.Proc) {
		hub = Rank(p, h, res.RanksOff, 0)
		leaf = Rank(p, h, res.RanksOff, 17)
	})
	e.Run()
	if hub <= 5*leaf {
		t.Errorf("hub rank %v not dominating leaf %v", hub, leaf)
	}
}

func TestPageRankConverges(t *testing.T) {
	e, h := memHeapWorld()
	edges := Symmetrize(RMAT(RMATConfig{Vertices: 128, EdgeFactor: 6, Seed: 9}))
	var g *Graph
	e.Spawn(0, "build", func(p *engine.Proc) { g = Build(p, h, 128, edges) })
	e.Run()
	res := RunPageRank(e, g, 4, 100, 1e-7)
	if res.Iterations >= 100 {
		t.Errorf("did not converge: %d iterations, delta %v", res.Iterations, res.Delta)
	}
	if res.Delta > 1e-7 {
		t.Errorf("final delta %v above eps", res.Delta)
	}
}

func TestConnectedComponentsMatchesReference(t *testing.T) {
	e, h := memHeapWorld()
	// Two cliques plus isolated vertices.
	var edges [][2]uint32
	clique := func(lo, hi uint32) {
		for a := lo; a < hi; a++ {
			for b := a + 1; b < hi; b++ {
				edges = append(edges, [2]uint32{a, b}, [2]uint32{b, a})
			}
		}
	}
	clique(0, 10)
	clique(20, 35)
	const n = 40 // 5 isolated vertices
	var g *Graph
	e.Spawn(0, "build", func(p *engine.Proc) { g = Build(p, h, n, edges) })
	e.Run()
	res := RunCC(e, g, 4)
	want := ReferenceCC(n, edges)
	if res.Components != want {
		t.Errorf("components = %d, want %d", res.Components, want)
	}
	// Every clique member shares a label; labels differ across cliques.
	e.Spawn(0, "check", func(p *engine.Proc) {
		l0 := LoadU32(p, h, res.LabelsOff+0)
		for v := uint32(1); v < 10; v++ {
			if LoadU32(p, h, res.LabelsOff+uint64(v)*4) != l0 {
				t.Errorf("clique-1 vertex %d has different label", v)
			}
		}
		l20 := LoadU32(p, h, res.LabelsOff+20*4)
		if l20 == l0 {
			t.Error("distinct cliques share a label")
		}
	})
	e.Run()
}

func TestConnectedComponentsOnRMATParallel(t *testing.T) {
	e, h := memHeapWorld()
	edges := Symmetrize(RMAT(RMATConfig{Vertices: 512, EdgeFactor: 4, Seed: 31}))
	var g *Graph
	e.Spawn(0, "build", func(p *engine.Proc) { g = Build(p, h, 512, edges) })
	e.Run()
	res := RunCC(e, g, 7)
	want := ReferenceCC(512, edges)
	if res.Components != want {
		t.Errorf("components = %d, want %d", res.Components, want)
	}
	if res.Rounds == 0 || res.ElapsedCycles == 0 {
		t.Error("no work recorded")
	}
}

func TestPageRankOverMappedHeap(t *testing.T) {
	// Data-integrity check: the same deterministic computation over a
	// pressure-evicted mapped heap must produce bit-identical ranks to the
	// DRAM heap (R-MAT leaves dangling vertices, so the sum itself leaks
	// below 1 by design — comparing against DRAM catches real corruption).
	edges := Symmetrize(RMAT(RMATConfig{Vertices: 1024, EdgeFactor: 6, Seed: 13}))
	run := func(e *engine.Engine, h Heap) []float64 {
		var g *Graph
		e.Spawn(0, "build", func(p *engine.Proc) { g = Build(p, h, 1024, edges) })
		e.Run()
		res := RunPageRank(e, g, 4, 10, 1e-5)
		out := make([]float64, 1024)
		e.Spawn(0, "collect", func(p *engine.Proc) {
			for v := uint32(0); v < 1024; v++ {
				out[v] = Rank(p, h, res.RanksOff, v)
			}
		})
		e.Run()
		return out
	}
	eMem, hMem := memHeapWorld()
	want := run(eMem, hMem)
	eMap, hMap := mappedHeapWorld(2 * mib) // under memory pressure
	got := run(eMap, hMap)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("rank[%d] differs: dram %v vs mapped %v (eviction corruption)", v, want[v], got[v])
		}
	}
}

func TestBetweennessMatchesReference(t *testing.T) {
	e, h := memHeapWorld()
	edges := Symmetrize(RMAT(RMATConfig{Vertices: 256, EdgeFactor: 6, Seed: 17}))
	var g *Graph
	e.Spawn(0, "build", func(p *engine.Proc) { g = Build(p, h, 256, edges) })
	e.Run()
	res := RunBC(e, g, 0, 4)
	want := ReferenceBC(256, edges, 0)
	e.Spawn(0, "check", func(p *engine.Proc) {
		for v := uint32(0); v < 256; v++ {
			got := math.Float64frombits(LoadU64(p, h, res.ScoresOff+uint64(v)*8))
			if math.Abs(got-want[v]) > 1e-9*(1+math.Abs(want[v])) {
				t.Fatalf("bc[%d] = %v, want %v", v, got, want[v])
			}
		}
	})
	e.Run()
}

func TestBetweennessOverMappedHeapParallel(t *testing.T) {
	edges := Symmetrize(RMAT(RMATConfig{Vertices: 512, EdgeFactor: 6, Seed: 19}))
	e, h := mappedHeapWorld(2 * mib)
	var g *Graph
	e.Spawn(0, "build", func(p *engine.Proc) { g = Build(p, h, 512, edges) })
	e.Run()
	res := RunBC(e, g, 0, 7)
	want := ReferenceBC(512, edges, 0)
	e.Spawn(0, "check", func(p *engine.Proc) {
		for v := uint32(0); v < 512; v++ {
			got := math.Float64frombits(LoadU64(p, h, res.ScoresOff+uint64(v)*8))
			if math.Abs(got-want[v]) > 1e-9*(1+math.Abs(want[v])) {
				t.Fatalf("bc[%d] over mapped heap = %v, want %v", v, got, want[v])
			}
		}
	})
	e.Run()
}
