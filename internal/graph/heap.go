// Package graph implements a Ligra-like shared-memory graph processing
// framework (Shun & Blelloch, PPoPP '13) as used in the paper's §6.2:
// CSR graphs, frontier-based EdgeMap with Ligra's sparse/dense direction
// switching, and BFS. The twist the paper evaluates: all large allocations
// (the graph and per-vertex state) go through a heap allocator that can be
// backed by a memory-mapped file on a fast storage device, extending the
// application's address space beyond DRAM with no other code changes.
package graph

import (
	"encoding/binary"
	"fmt"

	"aquila/internal/iface"
	"aquila/internal/sim/engine"
)

// Heap is the allocation target for graph data: either DRAM (the paper's
// "DRAM-only" malloc baseline) or a memory-mapped file over pmem/NVMe.
type Heap interface {
	// Alloc reserves n bytes and returns their heap offset.
	Alloc(n uint64) uint64
	// Load copies heap bytes [off, off+len(buf)) into buf.
	Load(p *engine.Proc, off uint64, buf []byte)
	// Store copies buf into the heap at off.
	Store(p *engine.Proc, off uint64, buf []byte)
	// Size returns the heap capacity.
	Size() uint64
}

// MappedHeap is a bump allocator over a memory mapping — the converted
// malloc of §5 ("we convert all malloc/free calls of Ligra to allocate space
// over a memory-mapped file").
type MappedHeap struct {
	M    iface.Mapping
	next uint64
}

// NewMappedHeap wraps a mapping as a heap.
func NewMappedHeap(m iface.Mapping) *MappedHeap { return &MappedHeap{M: m} }

// Alloc implements Heap (64-byte aligned bump allocation).
func (h *MappedHeap) Alloc(n uint64) uint64 {
	off := h.next
	h.next += (n + 63) &^ 63
	if h.next > h.M.Size() {
		panic(fmt.Sprintf("graph: mapped heap exhausted (%d > %d)", h.next, h.M.Size()))
	}
	return off
}

// Load implements Heap.
func (h *MappedHeap) Load(p *engine.Proc, off uint64, buf []byte) { h.M.Load(p, off, buf) }

// Store implements Heap.
func (h *MappedHeap) Store(p *engine.Proc, off uint64, buf []byte) { h.M.Store(p, off, buf) }

// Size implements Heap.
func (h *MappedHeap) Size() uint64 { return h.M.Size() }

// MemHeap is the DRAM-only baseline: a plain in-memory heap whose accesses
// cost only the data movement (no faults, no cache management).
type MemHeap struct {
	data []byte
	next uint64
}

// NewMemHeap allocates an in-memory heap.
func NewMemHeap(capacity uint64) *MemHeap {
	return &MemHeap{data: make([]byte, capacity)}
}

// Alloc implements Heap.
func (h *MemHeap) Alloc(n uint64) uint64 {
	off := h.next
	h.next += (n + 63) &^ 63
	if h.next > uint64(len(h.data)) {
		panic("graph: mem heap exhausted")
	}
	return off
}

// Load implements Heap.
func (h *MemHeap) Load(p *engine.Proc, off uint64, buf []byte) {
	copy(buf, h.data[off:])
	p.AdvanceUser(uint64(len(buf))/16 + 2)
}

// Store implements Heap.
func (h *MemHeap) Store(p *engine.Proc, off uint64, buf []byte) {
	copy(h.data[off:], buf)
	p.AdvanceUser(uint64(len(buf))/16 + 2)
}

// Size implements Heap.
func (h *MemHeap) Size() uint64 { return uint64(len(h.data)) }

// Typed helpers.

// LoadU32 reads one uint32 from the heap.
func LoadU32(p *engine.Proc, h Heap, off uint64) uint32 {
	var b [4]byte
	h.Load(p, off, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// StoreU32 writes one uint32 to the heap.
func StoreU32(p *engine.Proc, h Heap, off uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	h.Store(p, off, b[:])
}

// LoadU64 reads one uint64 from the heap.
func LoadU64(p *engine.Proc, h Heap, off uint64) uint64 {
	var b [8]byte
	h.Load(p, off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// StoreU64 writes one uint64 to the heap.
func StoreU64(p *engine.Proc, h Heap, off uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Store(p, off, b[:])
}
