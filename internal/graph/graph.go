package graph

import (
	"encoding/binary"
	"sort"

	"aquila/internal/sim/engine"
)

// Graph is a CSR graph stored in a Heap: offsets[n+1] of uint64 followed by
// edges[m] of uint32. With a mapped heap, every traversal access goes
// through the mmio path under study.
type Graph struct {
	H          Heap
	N          uint32 // vertices
	M          uint64 // edges
	offsetsOff uint64 // heap offset of the offsets array
	edgesOff   uint64 // heap offset of the edge array
}

// Build constructs a CSR graph in the heap from an edge list (counting sort
// by source). The build phase models the load step of §6.2 and writes
// through the heap (Store), so it also exercises the write path.
func Build(p *engine.Proc, h Heap, n uint32, edges [][2]uint32) *Graph {
	m := uint64(len(edges))
	g := &Graph{H: h, N: n, M: m}
	g.offsetsOff = h.Alloc((uint64(n) + 1) * 8)
	g.edgesOff = h.Alloc(m * 4)

	// Counting sort by source vertex (in Go memory, then bulk-stored).
	counts := make([]uint64, n+1)
	for _, e := range edges {
		counts[e[0]+1]++
	}
	for i := uint32(1); i <= n; i++ {
		counts[i] += counts[i-1]
	}
	offBytes := make([]byte, (uint64(n)+1)*8)
	for i := uint64(0); i <= uint64(n); i++ {
		binary.LittleEndian.PutUint64(offBytes[i*8:], counts[i])
	}
	sorted := make([]uint32, m)
	cursor := make([]uint64, n)
	copy(cursor, counts[:n])
	for _, e := range edges {
		sorted[cursor[e[0]]] = e[1]
		cursor[e[0]]++
	}
	// Sort each adjacency list for deterministic traversal order.
	for v := uint32(0); v < n; v++ {
		lo, hi := counts[v], counts[v+1]
		adj := sorted[lo:hi]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	edgeBytes := make([]byte, m*4)
	for i, v := range sorted {
		binary.LittleEndian.PutUint32(edgeBytes[i*4:], v)
	}
	// Bulk store (1 MB chunks): the sequential write pattern of loading.
	const chunk = 1 << 20
	for off := 0; off < len(offBytes); off += chunk {
		end := off + chunk
		if end > len(offBytes) {
			end = len(offBytes)
		}
		h.Store(p, g.offsetsOff+uint64(off), offBytes[off:end])
	}
	for off := 0; off < len(edgeBytes); off += chunk {
		end := off + chunk
		if end > len(edgeBytes) {
			end = len(edgeBytes)
		}
		h.Store(p, g.edgesOff+uint64(off), edgeBytes[off:end])
	}
	return g
}

// Degree returns a vertex's out-degree (two offset loads through the heap).
func (g *Graph) Degree(p *engine.Proc, v uint32) uint64 {
	var b [16]byte
	g.H.Load(p, g.offsetsOff+uint64(v)*8, b[:])
	lo := binary.LittleEndian.Uint64(b[0:])
	hi := binary.LittleEndian.Uint64(b[8:])
	return hi - lo
}

// Neighbors loads a vertex's adjacency list through the heap in one access
// run (the loads Ligra's edgeMap issues).
func (g *Graph) Neighbors(p *engine.Proc, v uint32, scratch []uint32) []uint32 {
	var b [16]byte
	g.H.Load(p, g.offsetsOff+uint64(v)*8, b[:])
	lo := binary.LittleEndian.Uint64(b[0:])
	hi := binary.LittleEndian.Uint64(b[8:])
	deg := hi - lo
	if deg == 0 {
		return scratch[:0]
	}
	if uint64(cap(scratch)) < deg {
		scratch = make([]uint32, deg)
	}
	scratch = scratch[:deg]
	buf := make([]byte, deg*4)
	g.H.Load(p, g.edgesOff+lo*4, buf)
	for i := range scratch {
		scratch[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
	return scratch
}

// VertexSubset is a Ligra frontier: sparse (vertex list) or dense (bitmap).
type VertexSubset struct {
	n      uint32
	sparse []uint32
	dense  []uint64
	count  uint64
}

// NewSparseSubset builds a sparse frontier.
func NewSparseSubset(n uint32, vs []uint32) *VertexSubset {
	return &VertexSubset{n: n, sparse: vs, count: uint64(len(vs))}
}

// Len returns the frontier size.
func (s *VertexSubset) Len() uint64 { return s.count }

// IsDense reports the representation.
func (s *VertexSubset) IsDense() bool { return s.dense != nil }

// Has reports membership (dense O(1); sparse only valid after toDense).
func (s *VertexSubset) Has(v uint32) bool {
	if s.dense != nil {
		return s.dense[v/64]&(1<<(v%64)) != 0
	}
	for _, x := range s.sparse {
		if x == v {
			return true
		}
	}
	return false
}

// toDense converts to a bitmap.
func (s *VertexSubset) toDense() {
	if s.dense != nil {
		return
	}
	s.dense = make([]uint64, (s.n+63)/64)
	for _, v := range s.sparse {
		s.dense[v/64] |= 1 << (v % 64)
	}
}
