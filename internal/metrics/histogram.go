// Package metrics is a thin re-export shim over aquila/internal/obs, the
// central observability layer. It exists so the many pre-obs import sites
// (harness, CLIs, kvs, core) keep compiling; new code should import
// aquila/internal/obs directly, where the same types live alongside the
// metrics registry, the span tracer and the experiment report schema.
package metrics

import "aquila/internal/obs"

// Histogram is a log-bucketed histogram of uint64 samples (cycles).
type Histogram = obs.Histogram

// Breakdown attributes cycles to named categories.
type Breakdown = obs.Breakdown

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return obs.NewHistogram() }

// NewBreakdown creates an empty breakdown.
func NewBreakdown() *Breakdown { return obs.NewBreakdown() }
