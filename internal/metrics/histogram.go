// Package metrics provides the measurement plumbing for the benchmark
// harness: HDR-style latency histograms (for the paper's average, p99 and
// p99.9 numbers) and named cycle breakdowns (for the per-component bars of
// Figures 7 and 8).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

const subBucketBits = 4 // 16 sub-buckets per power of two: ~6% resolution

// Histogram is a log-bucketed histogram of uint64 samples (cycles). It is
// HDR-like: constant memory, bounded relative error, exact count/sum/min/max.
type Histogram struct {
	buckets map[uint32]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[uint32]uint64), min: math.MaxUint64}
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) uint32 {
	if v < 1<<subBucketBits {
		return uint32(v)
	}
	msb := 63 - bits.LeadingZeros64(v)
	shift := msb - subBucketBits
	sub := uint32(v>>uint(shift)) & ((1 << subBucketBits) - 1)
	return uint32(msb+1)<<subBucketBits | sub
}

// bucketLow returns the smallest value mapping to bucket b (used as the
// representative value when reporting quantiles).
func bucketLow(b uint32) uint64 {
	exp := b >> subBucketBits
	if exp == 0 {
		return uint64(b)
	}
	msb := int(exp) - 1
	sub := uint64(b & ((1 << subBucketBits) - 1))
	return 1<<uint(msb) | sub<<uint(msb-subBucketBits)
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an approximation of the q-quantile (0 < q <= 1), accurate
// to the bucket resolution. The exact max is returned for q=1.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	keys := make([]uint32, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var seen uint64
	for _, k := range keys {
		seen += h.buckets[k]
		if seen > target {
			return bucketLow(k)
		}
	}
	return h.max
}

// P99 is Quantile(0.99); P999 is Quantile(0.999).
func (h *Histogram) P99() uint64  { return h.Quantile(0.99) }
func (h *Histogram) P999() uint64 { return h.Quantile(0.999) }

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for k, c := range other.buckets {
		h.buckets[k] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset empties the histogram.
func (h *Histogram) Reset() {
	h.buckets = make(map[uint32]uint64)
	h.count, h.sum, h.max = 0, 0, 0
	h.min = math.MaxUint64
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p99=%d p99.9=%d max=%d",
		h.count, h.Mean(), h.P99(), h.P999(), h.max)
}

// Breakdown attributes cycles to named categories, preserving first-use
// order for stable reporting.
type Breakdown struct {
	order  []string
	cycles map[string]uint64
	counts map[string]uint64
}

// NewBreakdown creates an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{cycles: make(map[string]uint64), counts: make(map[string]uint64)}
}

// Add attributes cycles to a category.
func (b *Breakdown) Add(category string, cycles uint64) {
	if _, ok := b.cycles[category]; !ok {
		b.order = append(b.order, category)
	}
	b.cycles[category] += cycles
	b.counts[category]++
}

// Get returns the cycles attributed to a category.
func (b *Breakdown) Get(category string) uint64 { return b.cycles[category] }

// Count returns the number of Add calls for a category.
func (b *Breakdown) Count(category string) uint64 { return b.counts[category] }

// PerOp returns category cycles divided by n (average per operation).
func (b *Breakdown) PerOp(category string, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(b.cycles[category]) / float64(n)
}

// Total returns the sum over all categories.
func (b *Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b.cycles {
		t += v
	}
	return t
}

// Categories returns category names in first-use order.
func (b *Breakdown) Categories() []string {
	out := make([]string, len(b.order))
	copy(out, b.order)
	return out
}

// Merge adds all categories of other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for _, c := range other.order {
		if _, ok := b.cycles[c]; !ok {
			b.order = append(b.order, c)
		}
		b.cycles[c] += other.cycles[c]
		b.counts[c] += other.counts[c]
	}
}

// Table renders the breakdown as per-op averages over n operations.
func (b *Breakdown) Table(n uint64) string {
	var sb strings.Builder
	total := b.Total()
	for _, c := range b.order {
		v := b.cycles[c]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(v) / float64(total)
		}
		fmt.Fprintf(&sb, "  %-28s %10.0f cycles/op  %5.1f%%\n", c, b.PerOp(c, n), pct)
	}
	fmt.Fprintf(&sb, "  %-28s %10.0f cycles/op\n", "TOTAL", float64(total)/float64(maxU64(n, 1)))
	return sb.String()
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
