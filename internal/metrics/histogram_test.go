package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []uint64{10, 20, 30} {
		h.Record(v)
	}
	if h.Count() != 3 || h.Sum() != 60 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Mean() != 20 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below 2^subBucketBits are stored exactly.
	h := NewHistogram()
	for v := uint64(0); v < 16; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0.5); got != 8 {
		t.Fatalf("median = %d, want 8", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	var samples []uint64
	for i := 0; i < 100000; i++ {
		v := uint64(rng.ExpFloat64() * 10000)
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		// Log-bucketed with 16 sub-buckets: within ~7% relative error.
		lo, hi := float64(exact)*0.93, float64(exact)*1.07
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("q=%v: got %d, exact %d (outside 7%%)", q, got, exact)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	if h.Quantile(1.0) != 1000 {
		t.Fatalf("q=1 should be exact max")
	}
	if h.Quantile(-1) > 1000 {
		t.Fatal("negative q should clamp")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(10)
	b.Record(1000)
	a.Merge(b)
	if a.Count() != 2 || a.Min() != 10 || a.Max() != 1000 {
		t.Fatalf("merged: count=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("reset did not clear")
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	check := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Record(uint64(v))
		}
		prev := uint64(0)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			if v > h.Max() {
				return false
			}
			prev = v
		}
		return h.Quantile(0.0) >= 0 && h.Quantile(1.0) == h.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: bucketLow(bucketOf(v)) <= v and relative error bounded.
func TestBucketRoundTripProperty(t *testing.T) {
	check := func(v uint64) bool {
		low := bucketLow(bucketOf(v))
		if low > v {
			return false
		}
		if v > 16 && float64(v-low) > float64(v)*0.07 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Add("trap", 1287)
	b.Add("io", 2400)
	b.Add("trap", 1287)
	if b.Get("trap") != 2574 || b.Count("trap") != 2 {
		t.Fatalf("trap = %d/%d", b.Get("trap"), b.Count("trap"))
	}
	if b.Total() != 2574+2400 {
		t.Fatalf("total = %d", b.Total())
	}
	if got := b.PerOp("trap", 2); got != 1287 {
		t.Fatalf("per-op = %v", got)
	}
	cats := b.Categories()
	if len(cats) != 2 || cats[0] != "trap" || cats[1] != "io" {
		t.Fatalf("categories = %v (want first-use order)", cats)
	}
}

func TestBreakdownMerge(t *testing.T) {
	a, b := NewBreakdown(), NewBreakdown()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merged: x=%d y=%d", a.Get("x"), a.Get("y"))
	}
}

func TestBreakdownTableRenders(t *testing.T) {
	b := NewBreakdown()
	b.Add("alpha", 100)
	s := b.Table(1)
	if s == "" {
		t.Fatal("empty table")
	}
}
