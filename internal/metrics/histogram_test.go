package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []uint64{10, 20, 30} {
		h.Record(v)
	}
	if h.Count() != 3 || h.Sum() != 60 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Mean() != 20 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below 2^subBucketBits are stored exactly.
	h := NewHistogram()
	for v := uint64(0); v < 16; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0.5); got != 8 {
		t.Fatalf("median = %d, want 8", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	var samples []uint64
	for i := 0; i < 100000; i++ {
		v := uint64(rng.ExpFloat64() * 10000)
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		// Log-bucketed with 16 sub-buckets: within ~7% relative error.
		lo, hi := float64(exact)*0.93, float64(exact)*1.07
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("q=%v: got %d, exact %d (outside 7%%)", q, got, exact)
		}
	}
}

// Edge cases: empty histogram, q=0, q=1, single sample, out-of-range q.
func TestHistogramQuantileEdges(t *testing.T) {
	empty := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}

	single := NewHistogram()
	single.Record(1000)
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.99, 1, 2} {
		if got := single.Quantile(q); got != 1000 {
			t.Fatalf("single-sample Quantile(%v) = %d, want 1000", q, got)
		}
	}

	h := NewHistogram()
	h.Record(100)
	h.Record(2000)
	h.Record(30000)
	if got := h.Quantile(0); got != 100 {
		t.Fatalf("q=0 should be exact min, got %d", got)
	}
	if got := h.Quantile(1); got != 30000 {
		t.Fatalf("q=1 should be exact max, got %d", got)
	}
	if got := h.Quantile(-3); got != 100 {
		t.Fatalf("negative q should clamp to min, got %d", got)
	}
	if got := h.Quantile(7); got != 30000 {
		t.Fatalf("q>1 should clamp to max, got %d", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(10)
	b.Record(1000)
	a.Merge(b)
	if a.Count() != 2 || a.Min() != 10 || a.Max() != 1000 {
		t.Fatalf("merged: count=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("reset did not clear")
	}
}

// Property: quantiles are monotone in q and bounded by [Min, Max], for any
// sample multiset including empty, single-sample and duplicate-heavy ones.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	check := func(vals []uint32) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Record(uint64(v))
		}
		prev := uint64(0)
		for i := 0; i <= 100; i++ {
			q := float64(i) / 100
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			if v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return h.Quantile(0.0) == h.Min() && h.Quantile(1.0) == h.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two histograms then taking quantiles is consistent with
// recording all samples into one histogram — Merge must not change the
// distribution.
func TestHistogramMergeQuantileConsistency(t *testing.T) {
	check := func(xs, ys []uint32) bool {
		a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
		for _, v := range xs {
			a.Record(uint64(v))
			all.Record(uint64(v))
		}
		for _, v := range ys {
			b.Record(uint64(v))
			all.Record(uint64(v))
		}
		a.Merge(b)
		if a.Count() != all.Count() || a.Sum() != all.Sum() ||
			a.Min() != all.Min() || a.Max() != all.Max() {
			return false
		}
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
			if a.Quantile(q) != all.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Add("trap", 1287)
	b.Add("io", 2400)
	b.Add("trap", 1287)
	if b.Get("trap") != 2574 || b.Count("trap") != 2 {
		t.Fatalf("trap = %d/%d", b.Get("trap"), b.Count("trap"))
	}
	if b.Total() != 2574+2400 {
		t.Fatalf("total = %d", b.Total())
	}
	if got := b.PerOp("trap", 2); got != 1287 {
		t.Fatalf("per-op = %v", got)
	}
	cats := b.Categories()
	if len(cats) != 2 || cats[0] != "trap" || cats[1] != "io" {
		t.Fatalf("categories = %v (want first-use order)", cats)
	}
}

func TestBreakdownMerge(t *testing.T) {
	a, b := NewBreakdown(), NewBreakdown()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merged: x=%d y=%d", a.Get("x"), a.Get("y"))
	}
}

func TestBreakdownTableRenders(t *testing.T) {
	b := NewBreakdown()
	b.Add("alpha", 100)
	s := b.Table(1)
	if s == "" {
		t.Fatal("empty table")
	}
}
