package host

import (
	"fmt"
	"sort"

	"aquila/internal/sim/engine"
	"aquila/internal/sim/mem"
	"aquila/internal/sim/pagetable"
)

// cachedPage is one resident page-cache page.
type cachedPage struct {
	f     *FSFile
	idx   uint64 // page index within the file
	frame *mem.Frame
	dirty bool
	// readahead marks pages brought in by read-around (PG_readahead):
	// hitting one decrements the file's mmap_miss counter.
	readahead bool
	// io is non-nil while the page's content is being read from disk;
	// concurrent faulters wait on it (PG_locked).
	io *engine.Event
	// pins guards against reclaim while a syscall path uses the page
	// across a blocking point.
	pins int
	// referenced is the second-chance bit (PG_referenced): set on access,
	// cleared when reclaim gives the page another round.
	referenced bool
	// active marks which LRU list holds the page.
	active bool
	// vas is the reverse mapping: every (process, va) this page is
	// mapped at.
	vas []mappedVA

	lruPrev, lruNext *cachedPage
	inLRU            bool
}

// mappedVA is one reverse-mapping entry.
type mappedVA struct {
	pr *Process
	va uint64
}

// PageCache is the kernel page cache: per-file radix trees (each guarded by
// its file's tree_lock), a global LRU guarded by lru_lock, and dirty
// accounting with direct-reclaim writeback.
// pageList is one intrusive LRU list (active or inactive).
type pageList struct {
	head, tail *cachedPage
	n          int
}

func (l *pageList) push(pg *cachedPage) {
	pg.lruPrev = nil
	pg.lruNext = l.head
	if l.head != nil {
		l.head.lruPrev = pg
	}
	l.head = pg
	if l.tail == nil {
		l.tail = pg
	}
	pg.inLRU = true
	l.n++
}

func (l *pageList) remove(pg *cachedPage) {
	if !pg.inLRU {
		return
	}
	if pg.lruPrev != nil {
		pg.lruPrev.lruNext = pg.lruNext
	} else {
		l.head = pg.lruNext
	}
	if pg.lruNext != nil {
		pg.lruNext.lruPrev = pg.lruPrev
	} else {
		l.tail = pg.lruPrev
	}
	pg.lruPrev, pg.lruNext, pg.inLRU = nil, nil, false
	l.n--
}

type PageCache struct {
	os        *OS
	allocator *mem.Allocator
	lruLock   *engine.Mutex
	// active/inactive are the kernel's two LRU lists: new pages enter
	// inactive; referenced pages are promoted; reclaim scans the inactive
	// tail with a second chance for referenced pages, and demotes from
	// active when inactive runs low. This gives the page cache its scan
	// resistance.
	active   pageList
	inactive pageList
	nrPages  int
	nrDirty  int
	// dirtyQueue approximates the kernel's per-BDI dirty list (FIFO).
	dirtyQueue []*cachedPage

	// Stats.
	Inserted  uint64
	Evicted   uint64
	WrittenBk uint64
	Promoted  uint64
	Demoted   uint64
}

func newPageCache(os *OS, capacityBytes uint64) *PageCache {
	return &PageCache{
		os:        os,
		allocator: mem.NewAllocator(capacityBytes, os.E.NumNUMANodes()),
		lruLock:   engine.NewMutex(os.E, "lru_lock"),
	}
}

// NrActive and NrInactive report the list populations (tests).
func (c *PageCache) NrActive() int   { return c.active.n }
func (c *PageCache) NrInactive() int { return c.inactive.n }

// Capacity returns the cache capacity in pages.
func (c *PageCache) Capacity() uint64 { return c.allocator.Capacity() }

// Resident returns the number of resident pages.
func (c *PageCache) Resident() int { return c.nrPages }

// NrDirty returns the number of dirty pages.
func (c *PageCache) NrDirty() int { return c.nrDirty }

// find returns the cached page at (f, idx), taking the file's tree_lock.
func (c *PageCache) find(p *engine.Proc, f *FSFile, idx uint64) *cachedPage {
	f.treeLock.Lock(p)
	c.os.charge(p, "tree-lock", c.os.P.RadixLookup)
	pg := f.pages[idx]
	f.treeLock.Unlock(p)
	return pg
}

// listOf returns the list currently holding pg.
func (c *PageCache) listOf(pg *cachedPage) *pageList {
	if pg.active {
		return &c.active
	}
	return &c.inactive
}

// lruRemove unlinks a page from whichever list holds it (caller holds
// lru_lock).
func (c *PageCache) lruRemove(pg *cachedPage) {
	c.listOf(pg).remove(pg)
}

// touch is mark_page_accessed: the first access sets the referenced bit, a
// second access promotes an inactive page to the active list.
func (c *PageCache) touch(p *engine.Proc, pg *cachedPage) {
	c.lruLock.Lock(p)
	c.os.charge(p, "lru", c.os.P.LRUUpdate)
	if pg.inLRU {
		if pg.referenced && !pg.active {
			c.inactive.remove(pg)
			pg.active = true
			pg.referenced = false
			c.active.push(pg)
			c.Promoted++
		} else {
			pg.referenced = true
		}
	}
	c.lruLock.Unlock(p)
}

// allocFrame obtains a frame, running direct reclaim when the cache is full.
func (c *PageCache) allocFrame(p *engine.Proc) *mem.Frame {
	for {
		if f := c.allocator.Alloc(p.Node()); f != nil {
			return f
		}
		c.reclaim(p)
	}
}

// insertNew creates a locked (under-I/O) page at (f, idx) and publishes it.
// Returns (page, true) when this caller owns the I/O, or the already-present
// page and false when it lost the race.
func (c *PageCache) insertNew(p *engine.Proc, f *FSFile, idx uint64) (*cachedPage, bool) {
	frame := c.allocFrame(p)
	f.treeLock.Lock(p)
	c.os.charge(p, "tree-lock", c.os.P.RadixLookup)
	if existing := f.pages[idx]; existing != nil {
		f.treeLock.Unlock(p)
		c.allocator.Release(frame)
		return existing, false
	}
	c.os.charge(p, "tree-lock", c.os.P.RadixInsert)
	pg := &cachedPage{
		f: f, idx: idx, frame: frame,
		io: engine.NewEvent(c.os.E, fmt.Sprintf("pgio:%s:%d", f.name, idx)),
	}
	f.pages[idx] = pg
	f.treeLock.Unlock(p)

	c.lruLock.Lock(p)
	c.os.charge(p, "lru", c.os.P.LRUUpdate)
	c.inactive.push(pg)
	c.nrPages++
	c.lruLock.Unlock(p)
	c.Inserted++
	return pg, true
}

// waitPage blocks until a page's in-flight read completes.
func (c *PageCache) waitPage(p *engine.Proc, pg *cachedPage) {
	if pg.io != nil && !pg.io.Fired() {
		pg.io.Wait(p)
	}
}

// markDirty tags a page dirty under its file's tree_lock — the same lock the
// paper identifies as the shared-file write-scaling bottleneck.
func (c *PageCache) markDirty(p *engine.Proc, pg *cachedPage) {
	pg.f.treeLock.Lock(p)
	c.os.charge(p, "tree-lock", c.os.P.RadixLookup)
	if !pg.dirty {
		pg.dirty = true
		pg.f.nrDirty++
		c.nrDirty++
		c.dirtyQueue = append(c.dirtyQueue, pg)
	}
	pg.f.treeLock.Unlock(p)
}

// throttleDirty emulates balance_dirty_pages: when dirty pages exceed the
// dirty ratio, the dirtying process synchronously writes a batch back.
func (c *PageCache) throttleDirty(p *engine.Proc) {
	limit := int(float64(c.allocator.Capacity()) * c.os.P.DirtyRatio)
	if limit < 1 {
		limit = 1
	}
	for c.nrDirty > limit && len(c.dirtyQueue) > 0 {
		c.writebackBatch(p, c.os.P.ReclaimBatch)
	}
}

// writebackBatch writes up to n dirty pages from the dirty FIFO.
func (c *PageCache) writebackBatch(p *engine.Proc, n int) {
	var batch []*cachedPage
	for len(batch) < n && len(c.dirtyQueue) > 0 {
		pg := c.dirtyQueue[0]
		c.dirtyQueue = c.dirtyQueue[1:]
		if pg.dirty {
			batch = append(batch, pg)
		}
	}
	c.writePages(p, batch)
}

// writePages clears dirty state and issues the writes, merging pages that
// are adjacent on the device into single I/Os.
func (c *PageCache) writePages(p *engine.Proc, pages []*cachedPage) {
	if len(pages) == 0 {
		return
	}
	p.BeginSpan("lx.writeback")
	defer p.EndSpan()
	sort.Slice(pages, func(i, j int) bool {
		if pages[i].f != pages[j].f {
			return pages[i].f.id < pages[j].f.id
		}
		return pages[i].idx < pages[j].idx
	})
	protected := 0
	protectedProcs := make(map[*Process]struct{})
	for _, pg := range pages {
		pg.f.treeLock.Lock(p)
		if pg.dirty {
			pg.dirty = false
			pg.f.nrDirty--
			c.nrDirty--
		}
		pg.f.treeLock.Unlock(p)
		// page_mkclean: write-protect live mappings so the next store
		// re-dirties the page; otherwise post-writeback stores would be
		// lost at eviction.
		for _, mv := range pg.vas {
			if mv.pr.PT.Protect(mv.va, pagetable.FlagUser|pagetable.FlagAccessed) {
				c.os.charge(p, "writeback", c.os.C.PTEUpdate)
				protected++
				protectedProcs[mv.pr] = struct{}{}
			}
		}
	}
	for pr := range protectedProcs {
		pr.shootdown(p, protected)
	}
	// Coalesce device-adjacent pages.
	i := 0
	for i < len(pages) {
		j := i + 1
		for j < len(pages) && pages[j].f == pages[i].f && pages[j].idx == pages[j-1].idx+1 {
			j++
		}
		run := pages[i:j]
		base := run[0].f.devOff(run[0].idx * PageSize)
		for _, pg := range run {
			if pg.frame.HasData() {
				c.os.FS.disk.Content.WriteAt(pg.f.devOff(pg.idx*PageSize), pg.frame.Data())
			}
		}
		// One timed I/O for the run.
		c.timedWrite(p, base, len(run)*PageSize)
		c.WrittenBk += uint64(len(run))
		i = j
	}
}

// timedWrite charges the kernel write path without content movement
// (content is copied per page above) and schedules the staged range's
// durability at the device completion cycle: fsync/msync callers return only
// after this wait, so acknowledged data is on durable media.
func (c *PageCache) timedWrite(p *engine.Proc, off uint64, bytes int) {
	disk := c.os.FS.disk
	p.BeginSpan("lx.block_io")
	defer p.EndSpan()
	if disk.PMem {
		c.os.charge(p, "writeback", c.os.P.PMemBlockOverhead+c.os.C.MemcpyNoSIMD(bytes))
		done := disk.Timing.Submit(p.Now(), bytes, true)
		disk.Content.Persist(off, bytes, done)
		p.WaitUntil(done, engine.KindIOWait)
	} else {
		c.os.charge(p, "writeback", c.os.P.BlockLayerSubmit)
		done := disk.Timing.Submit(p.Now(), bytes, true)
		disk.Content.Persist(off, bytes, done)
		p.WaitUntil(done, engine.KindIOWait)
		c.os.charge(p, "writeback", c.os.P.BlockLayerComplete+c.os.C.InterruptDelivery+c.os.C.ContextSwitch)
	}
}

// reclaim is direct reclaim: evict a batch of pages from the LRU tail,
// unmapping mapped ones (one batched TLB shootdown) and writing dirty ones.
// Victims stay in their radix trees, marked busy, until write-back
// completes — concurrent faulters wait on the page instead of re-reading
// stale device content (the kernel's PG_writeback discipline).
func (c *PageCache) reclaim(p *engine.Proc) {
	p.BeginSpan("lx.reclaim")
	defer p.EndSpan()
	c.lruLock.Lock(p)
	// Balance: when the inactive list runs low, demote from the active
	// tail (shrink_active_list).
	for c.inactive.n < c.active.n/2 && c.active.tail != nil {
		pg := c.active.tail
		c.active.remove(pg)
		pg.active = false
		pg.referenced = false
		c.inactive.push(pg)
		c.Demoted++
		c.os.charge(p, "lru", c.os.P.LRUUpdate)
	}
	var victims []*cachedPage
	pg := c.inactive.tail
	scanned := 0
	for pg != nil && len(victims) < c.os.P.ReclaimBatch && scanned < 4*c.os.P.ReclaimBatch {
		prev := pg.lruPrev
		scanned++
		switch {
		case pg.pins > 0 || (pg.io != nil && !pg.io.Fired()):
			// busy: skip
		case pg.referenced:
			// Second chance: rotate to the head, clear the bit.
			c.inactive.remove(pg)
			pg.referenced = false
			c.inactive.push(pg)
		default:
			c.inactive.remove(pg)
			// Mark busy: faulters finding the page wait until the
			// page is fully gone, then retry.
			pg.io = engine.NewEvent(c.os.E, "reclaim")
			victims = append(victims, pg)
		}
		c.os.charge(p, "lru", c.os.P.LRUUpdate)
		pg = prev
	}
	c.nrPages -= len(victims)
	c.lruLock.Unlock(p)

	if len(victims) == 0 {
		// Everything pinned or in flight: let I/O owners make progress.
		c.os.charge(p, "lru", c.os.P.LRUUpdate*8)
		p.Yield()
		return
	}

	// Unmap all victims first (one batched shootdown per process), so no
	// new stores land after the write-back snapshot.
	unmapped := 0
	unmappedProcs := make(map[*Process]struct{})
	var dirty []*cachedPage
	for _, v := range victims {
		// page_referenced + rmap walk per victim.
		c.os.charge(p, "reclaim", c.os.P.ReclaimPerPage)
		for _, mv := range v.vas {
			if mv.pr.PT.Unmap(mv.va) {
				c.os.charge(p, "reclaim", c.os.C.PTEUpdate)
				unmapped++
				unmappedProcs[mv.pr] = struct{}{}
			}
		}
		v.vas = nil
		if v.dirty {
			dirty = append(dirty, v)
		}
	}
	for pr := range unmappedProcs {
		pr.shootdown(p, unmapped)
	}
	c.writePages(p, dirty)
	// Now drop the pages from their trees and recycle the frames.
	for _, v := range victims {
		v.f.treeLock.Lock(p)
		c.os.charge(p, "tree-lock", c.os.P.RadixLookup)
		delete(v.f.pages, v.idx)
		v.f.treeLock.Unlock(p)
	}
	doneAt := p.Now()
	for _, v := range victims {
		v.io.Fire(doneAt)
		v.io = nil
		v.frame.Reset()
		c.allocator.Release(v.frame)
	}
	c.Evicted += uint64(len(victims))
}

// truncate drops all cached pages of a file (delete path).
func (c *PageCache) truncate(p *engine.Proc, f *FSFile) {
	f.treeLock.Lock(p)
	pages := make([]*cachedPage, 0, len(f.pages))
	for _, pg := range f.pages {
		pages = append(pages, pg)
	}
	f.pages = make(map[uint64]*cachedPage)
	f.treeLock.Unlock(p)

	unmapped := 0
	truncProcs := make(map[*Process]struct{})
	c.lruLock.Lock(p)
	for _, pg := range pages {
		c.lruRemove(pg)
		c.nrPages--
	}
	c.lruLock.Unlock(p)
	for _, pg := range pages {
		for _, mv := range pg.vas {
			if mv.pr.PT.Unmap(mv.va) {
				unmapped++
				truncProcs[mv.pr] = struct{}{}
			}
		}
		if pg.dirty {
			pg.dirty = false
			pg.f.nrDirty--
			c.nrDirty--
		}
		pg.frame.Reset()
		c.allocator.Release(pg.frame)
	}
	for pr := range truncProcs {
		pr.shootdown(p, unmapped)
	}
}

// fsyncFile writes back all dirty pages of one file in offset order.
func (c *PageCache) fsyncFile(p *engine.Proc, f *FSFile) {
	c.fsyncFileRange(p, f, 0, f.cap)
}

// fsyncFileRange writes back dirty pages overlapping [off, off+length).
// msync(2) walks the requested range page by page, so the scan itself costs
// in proportion to the range — the reason Kreon's custom msync syncs only
// the windows it appended (§7.2).
func (c *PageCache) fsyncFileRange(p *engine.Proc, f *FSFile, off, length uint64) {
	lo := off / PageSize
	hi := (off + length + PageSize - 1) / PageSize
	if max := (f.cap + PageSize - 1) / PageSize; hi > max {
		hi = max
	}
	c.os.charge(p, "msync", (hi-lo)*20) // per-page range walk
	f.treeLock.Lock(p)
	var dirty []*cachedPage
	for idx, pg := range f.pages {
		if pg.dirty && idx >= lo && idx < hi {
			dirty = append(dirty, pg)
		}
	}
	f.treeLock.Unlock(p)
	c.writePages(p, dirty)
}
