package host

import (
	"aquila/internal/sim/engine"
	"aquila/internal/sim/pagetable"
)

// Hypervisor models the VMX-root services Aquila needs for its uncommon-path
// operations (§3.4, §3.5): vmcall handling, EPT management with 1 GB pages
// for guest DRAM-cache grants, and rate-limited posted-IPI sends for the
// batched TLB shootdowns of §4.1.
type Hypervisor struct {
	os  *OS
	ept *pagetable.Table

	// Stats.
	VMCalls      uint64
	EPTFaults    uint64
	GrantedBytes uint64
	IPIBatches   uint64
	IPITargets   uint64
}

func newHypervisor(os *OS) *Hypervisor {
	return &Hypervisor{os: os, ept: pagetable.New(0xEF7)}
}

// EPT exposes the extended page table (GPA -> HPA), one per process (§3.5:
// Aquila replaces Dune's per-thread EPT with a per-process one).
func (hv *Hypervisor) EPT() *pagetable.Table { return hv.ept }

// VMCall executes a hypercall: vmexit, handlerCycles of root-mode work,
// vmentry. All charged as system time on the caller.
func (hv *Hypervisor) VMCall(p *engine.Proc, handlerCycles uint64) {
	hv.VMCalls++
	p.AdvanceSystem(hv.os.C.VMExit + handlerCycles + hv.os.C.VMEntry)
}

// GrantRegion maps `bytes` of host DRAM into the guest physical address
// space starting at gpa, using 1 GB EPT pages (§3.5). Called via vmcall when
// Aquila grows its DRAM cache.
func (hv *Hypervisor) GrantRegion(p *engine.Proc, gpa, bytes uint64) {
	hv.VMCall(p, 3000) // root-mode allocation bookkeeping
	for off := uint64(0); off < bytes; off += pagetable.Size1G {
		hv.ept.Map(gpa+off, (gpa+off)>>12, pagetable.FlagWritable, pagetable.Size1G)
		p.AdvanceSystem(hv.os.C.PTEUpdate)
	}
	hv.GrantedBytes += bytes
}

// ReclaimRegion unmaps a granted region (cache shrink).
func (hv *Hypervisor) ReclaimRegion(p *engine.Proc, gpa, bytes uint64) {
	hv.VMCall(p, 3000)
	hv.ept.UnmapRange(gpa, bytes)
	hv.GrantedBytes -= bytes
}

// EPTFault handles a guest access to a GPA without an EPT translation:
// a vmexit, a walk of the guest's regular page table to validate the access
// (as Dune does), EPT fill, and resume. Returns the cycles charged.
func (hv *Hypervisor) EPTFault(p *engine.Proc, gpa uint64) {
	hv.EPTFaults++
	p.AdvanceSystem(hv.os.C.VMExit)
	p.AdvanceSystem(hv.os.P.VMALookup + 4*hv.os.C.PTEUpdate) // validate + fill
	hv.ept.Map(gpa&^uint64(pagetable.Size1G-1), gpa>>12, pagetable.FlagWritable, pagetable.Size1G)
	p.AdvanceSystem(hv.os.C.VMEntry)
}

// EPTMapped reports whether gpa has an EPT translation.
func (hv *Hypervisor) EPTMapped(gpa uint64) bool {
	_, ok := hv.ept.Lookup(gpa)
	return ok
}

// SendShootdownIPIs is Aquila's batched-invalidation send path: one vmexit
// for rate limiting (§4.1: 2081 cycles instead of 298), then posted IPIs to
// each target, received without vmexits. The receiver-side work is delivered
// as interrupt load.
func (hv *Hypervisor) SendShootdownIPIs(p *engine.Proc, targets []int, recvCycles uint64) {
	hv.IPIBatches++
	p.AdvanceSystem(hv.os.C.IPISendVMExit)
	for _, c := range targets {
		if c == p.CPU() {
			continue
		}
		hv.IPITargets++
		p.AdvanceSystem(100) // per-target posted-interrupt descriptor write
		hv.os.E.PostIRQ(c, recvCycles)
	}
}

// DirectIOTimed charges the timing of a guest-issued direct I/O through the
// host kernel (vmcall + syscall + block path + device) without moving
// content; Aquila's HOST-* engines move content per page themselves. It
// returns the device completion cycle — the durability point the caller must
// pass to Store.Persist for any content it staged before calling.
func (os *OS) DirectIOTimed(p *engine.Proc, bytes int, write bool) uint64 {
	p.AdvanceSystem(os.C.VMExit + os.C.Syscall + os.P.SyscallKernelPath + os.P.DirectIOPathCost)
	disk := os.FS.disk
	var done uint64
	if disk.PMem {
		p.AdvanceSystem(os.P.PMemBlockOverhead + os.C.MemcpyNoSIMD(bytes))
		done = disk.Timing.Submit(p.Now(), bytes, write)
		p.WaitUntil(done, engine.KindIOWait)
	} else {
		p.AdvanceSystem(os.P.BlockLayerSubmit)
		done = disk.Timing.Submit(p.Now(), bytes, write)
		p.WaitUntil(done, engine.KindIOWait)
		p.AdvanceSystem(os.P.BlockLayerComplete + os.C.InterruptDelivery + os.C.ContextSwitch)
	}
	p.AdvanceSystem(os.C.VMEntry)
	return done
}

// DirectReadHost is the HOST-pmem / HOST-NVMe I/O engine entry point of
// Fig 8(c): Aquila issues a direct-I/O read through the host kernel, paying
// a vmcall on top of the syscall path.
func (os *OS) DirectReadHost(p *engine.Proc, f *FSFile, off uint64, buf []byte) {
	p.AdvanceSystem(os.C.VMExit + os.C.Syscall + os.P.SyscallKernelPath + os.P.DirectIOPathCost)
	os.blockRead(p, f.devOff(off), buf)
	p.AdvanceSystem(os.C.VMEntry)
}

// DirectWriteHost is the write-side HOST-* engine.
func (os *OS) DirectWriteHost(p *engine.Proc, f *FSFile, off uint64, buf []byte) {
	p.AdvanceSystem(os.C.VMExit + os.C.Syscall + os.P.SyscallKernelPath + os.P.DirectIOPathCost)
	os.blockWrite(p, f.devOff(off), buf)
	p.AdvanceSystem(os.C.VMEntry)
}
