package host

import (
	"fmt"
	"sort"

	"aquila/internal/iface"
	"aquila/internal/sim/engine"
	"aquila/internal/sim/mem"
	"aquila/internal/sim/pagetable"
)

// vma is one virtual memory area of the (single) process.
type vma struct {
	start, end uint64
	f          *FSFile
	advice     iface.Advice
	// readOnly blocks stores (mprotect(PROT_READ)).
	readOnly bool
	// kmmap marks Kreon's custom in-kernel mmio path (§7.2): no fault
	// read-around and a lazy write-back policy driven by its custom msync
	// instead of dirty throttling. Faults still pay the full ring-3 trap.
	kmmap bool
}

// vmaSet models the kernel's rb-tree of VMAs: ordered, O(log n) lookup.
// Mutations and lookups are serialized by OS.mmapSem, which the fault path
// takes shared — the contention pattern §3.4 describes.
type vmaSet struct {
	list []*vma // sorted by start
}

func newVMASet() *vmaSet { return &vmaSet{} }

func (s *vmaSet) insert(v *vma) {
	i := sort.Search(len(s.list), func(i int) bool { return s.list[i].start >= v.start })
	s.list = append(s.list, nil)
	copy(s.list[i+1:], s.list[i:])
	s.list[i] = v
}

func (s *vmaSet) remove(v *vma) {
	for i, x := range s.list {
		if x == v {
			s.list = append(s.list[:i], s.list[i+1:]...)
			return
		}
	}
}

// find returns the VMA containing va, or nil.
func (s *vmaSet) find(va uint64) *vma {
	i := sort.Search(len(s.list), func(i int) bool { return s.list[i].end > va })
	if i < len(s.list) && s.list[i].start <= va {
		return s.list[i]
	}
	return nil
}

// Mapping is a Linux shared file-backed mmap region in one process.
type Mapping struct {
	os   *OS
	pr   *Process
	v    *vma
	f    *FSFile
	size uint64
	dead bool
}

// Process returns the owning process.
func (m *Mapping) Process() *Process { return m.pr }

var _ iface.Mapping = (*Mapping)(nil)

// Mmap creates a shared mapping of f's first `size` bytes in the default
// process.
func (os *OS) Mmap(p *engine.Proc, f *FSFile, size uint64) *Mapping {
	return os.DefaultProcess().mmapInternal(p, f, size, false)
}

// MmapKmmap creates a mapping through Kreon's custom in-kernel mmio path
// (kmmap, §7.2): same trap costs as Linux mmap, but no read-around and lazy
// write-back.
func (os *OS) MmapKmmap(p *engine.Proc, f *FSFile, size uint64) *Mapping {
	return os.DefaultProcess().mmapInternal(p, f, size, true)
}

// Mmap creates a shared mapping in this process; mappings of the same file
// from different processes share cached pages.
func (pr *Process) Mmap(p *engine.Proc, f *FSFile, size uint64) *Mapping {
	return pr.mmapInternal(p, f, size, false)
}

func (pr *Process) mmapInternal(p *engine.Proc, f *FSFile, size uint64, kmmap bool) *Mapping {
	os := pr.os
	os.charge(p, "syscall", os.C.Syscall+os.P.SyscallKernelPath)
	pr.mmapSem.Lock(p)
	pages := (size + PageSize - 1) / PageSize
	start := pr.nextVA
	pr.nextVA += (pages + 16) * PageSize // guard gap
	v := &vma{start: start, end: start + pages*PageSize, f: f, kmmap: kmmap}
	pr.vmas.insert(v)
	os.charge(p, "vma", os.P.VMALookup) // rb-tree insert
	pr.mmapSem.Unlock(p)
	return &Mapping{os: os, pr: pr, v: v, f: f, size: size}
}

// Size implements iface.Mapping.
func (m *Mapping) Size() uint64 { return m.size }

// Advise implements iface.Mapping.
func (m *Mapping) Advise(p *engine.Proc, advice iface.Advice) {
	m.os.charge(p, "syscall", m.os.C.Syscall+m.os.P.SyscallKernelPath)
	m.pr.mmapSem.Lock(p)
	m.v.advice = advice
	m.pr.mmapSem.Unlock(p)
}

// Load implements iface.Mapping: simulated load instructions.
func (m *Mapping) Load(p *engine.Proc, off uint64, buf []byte) {
	m.checkRange(off, len(buf))
	for n := 0; n < len(buf); {
		va := m.v.start + off + uint64(n)
		po := int(va % PageSize)
		chunk := PageSize - po
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		frame := m.pr.resolve(p, va, false)
		copyFromFrame(buf[n:n+chunk], frame, po)
		p.AdvanceUser(loadStoreCost(chunk))
		n += chunk
	}
}

// Store implements iface.Mapping: simulated store instructions.
func (m *Mapping) Store(p *engine.Proc, off uint64, buf []byte) {
	if m.v.readOnly {
		panic(fmt.Sprintf("host: store to read-only mapping of %q (SIGSEGV)", m.f.name))
	}
	m.checkRange(off, len(buf))
	for n := 0; n < len(buf); {
		va := m.v.start + off + uint64(n)
		po := int(va % PageSize)
		chunk := PageSize - po
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		frame := m.pr.resolve(p, va, true)
		copy(frame.Data()[po:po+chunk], buf[n:n+chunk])
		p.AdvanceUser(loadStoreCost(chunk))
		// Dirty throttling runs only after the store's data has landed
		// in the frame; throttling inside the fault itself would clean
		// (and write-protect) the page before the store happened.
		if !m.v.kmmap {
			m.os.Cache.throttleDirty(p)
		}
		n += chunk
	}
}

// Msync implements iface.Mapping: writes the file's dirty pages back. The
// host path does not model writeback errors, so this always reports success.
func (m *Mapping) Msync(p *engine.Proc) error {
	p.BeginSpan("lx.msync")
	defer p.EndSpan()
	m.os.charge(p, "syscall", m.os.C.Syscall+m.os.P.SyscallKernelPath)
	m.os.Cache.fsyncFile(p, m.f)
	return nil
}

// MsyncRange implements iface.Mapping: only dirty pages overlapping
// [off, off+length) are written back.
func (m *Mapping) MsyncRange(p *engine.Proc, off, length uint64) error {
	p.BeginSpan("lx.msync")
	defer p.EndSpan()
	m.os.charge(p, "syscall", m.os.C.Syscall+m.os.P.SyscallKernelPath)
	m.os.Cache.fsyncFileRange(p, m.f, off, length)
	return nil
}

// Munmap implements iface.Mapping: destroys the mapping. Cached pages stay
// in the page cache (shared semantics); dirty pages are written back.
func (m *Mapping) Munmap(p *engine.Proc) {
	if m.dead {
		return
	}
	m.dead = true
	m.os.charge(p, "syscall", m.os.C.Syscall+m.os.P.SyscallKernelPath)
	m.pr.mmapSem.Lock(p)
	m.pr.vmas.remove(m.v)
	unmapped := 0
	for va := m.v.start; va < m.v.end; va += PageSize {
		if m.pr.PT.Unmap(va) {
			m.os.charge(p, "pte", m.os.C.PTEUpdate)
			unmapped++
			idx := (va - m.v.start) / PageSize
			if pg := m.os.Cache.find(p, m.f, idx); pg != nil {
				removeVA(pg, m.pr, va)
			}
		}
	}
	if unmapped > 0 {
		m.pr.shootdown(p, unmapped)
	}
	m.pr.mmapSem.Unlock(p)
	m.os.Cache.fsyncFile(p, m.f)
}

func (m *Mapping) checkRange(off uint64, n int) {
	if off+uint64(n) > m.size {
		panic(fmt.Sprintf("host: mapping access [%d,%d) beyond size %d", off, off+uint64(n), m.size))
	}
}

// loadStoreCost is the user-side cost of moving n bytes through cached
// mappings (ordinary loads/stores, ~DRAM bandwidth).
func loadStoreCost(n int) uint64 { return uint64(n)/16 + 2 }

func copyFromFrame(dst []byte, f *mem.Frame, off int) {
	if f.HasData() {
		copy(dst, f.Data()[off:off+len(dst)])
		return
	}
	for i := range dst {
		dst[i] = 0
	}
}

func removeVA(pg *cachedPage, pr *Process, va uint64) {
	for i, x := range pg.vas {
		if x.pr == pr && x.va == va {
			pg.vas = append(pg.vas[:i], pg.vas[i+1:]...)
			return
		}
	}
}

// resolve returns the frame currently backing va, with the required
// permission, re-running the access path until the translation is stable:
// between a fault returning and the caller's data copy, a concurrent
// eviction may have unmapped the page and recycled its frame, so the
// va -> frame binding is re-validated with no intervening simulated time.
func (pr *Process) resolve(p *engine.Proc, va uint64, write bool) *mem.Frame {
	for {
		frame := pr.access(p, va, write)
		if e, ok := pr.PT.Lookup(va); ok && e.Frame == frame.ID &&
			(!write || e.Flags.Has(pagetable.FlagWritable)) {
			return frame
		}
	}
}

// access resolves one virtual address, taking the hardware fast path
// (TLB hit: free) or the fault path, and returns the backing frame.
func (pr *Process) access(p *engine.Proc, va uint64, write bool) *mem.Frame {
	os := pr.os
	vpn := va >> mem.PageShift
	tlb := os.TLBs.CPU(p.CPU())
	asid := pr.PT.ASID()
	if tlb.Lookup(asid, vpn) {
		if e, ok := pr.PT.Lookup(va); ok {
			if !write || e.Flags.Has(pagetable.FlagWritable) {
				return os.Cache.allocator.Frame(e.Frame)
			}
			return pr.wpFault(p, va)
		}
		// Stale TLB entry (should not happen: shootdowns keep us
		// coherent), fall through to fault.
		tlb.InvalidatePage(asid, vpn)
	}
	if e, ok := pr.PT.Lookup(va); ok {
		p.AdvanceUser(os.C.TLBRefill)
		tlb.Insert(asid, vpn)
		if !write || e.Flags.Has(pagetable.FlagWritable) {
			return os.Cache.allocator.Frame(e.Frame)
		}
		return pr.wpFault(p, va)
	}
	return pr.pageFault(p, va, write)
}

// wpFault is the write-protect fault on a present read-only page of a shared
// mapping: mark the page dirty (under tree_lock) and upgrade the PTE.
func (pr *Process) wpFault(p *engine.Proc, va uint64) *mem.Frame {
	os := pr.os
	p.BeginSpan("lx.wp_fault")
	defer p.EndSpan()
	va &^= uint64(PageSize - 1)
	pr.noteCPU(p.CPU())
	os.charge(p, "trap", os.C.TrapRing3+os.P.FaultEntry)
	pr.mmapSem.RLock(p)
	os.charge(p, "vma", os.P.VMALookup)
	v := pr.vmas.find(va)
	if v == nil {
		panic(fmt.Sprintf("host: wp fault outside any vma: %#x", va))
	}
	idx := (va - v.start) / PageSize
	pg := os.Cache.find(p, v.f, idx)
	if pg == nil || (pg.io != nil && !pg.io.Fired()) {
		// Raced with reclaim; retry as a full fault.
		pr.mmapSem.RUnlock(p)
		return pr.pageFault(p, va, true)
	}
	pg.pins++
	defer func() { pg.pins-- }()
	os.Cache.markDirty(p, pg)
	pr.PT.Protect(va, pagetable.FlagUser|pagetable.FlagWritable|pagetable.FlagAccessed|pagetable.FlagDirty)
	os.charge(p, "pte", os.C.PTEUpdate+os.C.TLBInvalidatePage)
	tlb := os.TLBs.CPU(p.CPU())
	tlb.InvalidatePage(pr.PT.ASID(), va>>mem.PageShift)
	tlb.Insert(pr.PT.ASID(), va>>mem.PageShift)
	pr.mmapSem.RUnlock(p)
	return os.Cache.allocator.Frame(pg.frame.ID)
}

// pageFault is the Linux mmio fault path: trap to ring 0, VMA lookup under
// mmap_sem, filemap_fault with 4.14-style read-around, PTE installation.
func (pr *Process) pageFault(p *engine.Proc, va uint64, write bool) *mem.Frame {
	os := pr.os
	p.BeginSpan("lx.fault")
	defer p.EndSpan()
	va &^= uint64(PageSize - 1)
	pr.noteCPU(p.CPU())
	os.charge(p, "trap", os.C.TrapRing3+os.P.FaultEntry)
	pr.mmapSem.RLock(p)
	os.charge(p, "vma", os.P.VMALookup)
	v := pr.vmas.find(va)
	if v == nil {
		panic(fmt.Sprintf("host: page fault outside any vma: %#x", va))
	}
	f := v.f
	idx := (va - v.start) / PageSize

	var pg *cachedPage
	for {
		pg = os.Cache.find(p, f, idx)
		if pg != nil {
			if pg.io != nil && !pg.io.Fired() {
				// Read or reclaim in flight: wait, then re-check —
				// the page may be gone (reclaimed) by wake-up.
				os.Cache.waitPage(p, pg)
				continue
			}
			// Minor fault. A read-around page being used decays the
			// miss counter, keeping read-around alive (4.14
			// do_async_mmap_readahead).
			if pg.readahead {
				pg.readahead = false
				if f.mmapMiss > 0 {
					f.mmapMiss--
				}
			}
			break
		}
		pg = pr.majorFault(p, v, idx)
		if pg != nil && (pg.io == nil || pg.io.Fired()) {
			break
		}
	}
	// Pin across PTE installation: the dirty-marking and mapping steps
	// yield, and reclaim recycling this frame mid-fault would install a
	// PTE to a stale frame.
	pg.pins++
	defer func() { pg.pins-- }()

	// Install the PTE. Shared-mapping read faults map read-only so the
	// first store takes a write-protect fault that marks the page dirty.
	flags := pagetable.FlagUser | pagetable.FlagAccessed
	if write {
		flags |= pagetable.FlagWritable | pagetable.FlagDirty
		os.Cache.markDirty(p, pg)
	}
	if _, mapped := pr.PT.Lookup(va); !mapped {
		pr.PT.Map(va, pg.frame.ID, flags, pagetable.Size4K)
		pg.vas = append(pg.vas, mappedVA{pr: pr, va: va})
	} else {
		pr.PT.Protect(va, flags)
	}
	os.charge(p, "pte", os.C.PTEUpdate)
	os.TLBs.CPU(p.CPU()).Insert(pr.PT.ASID(), va>>mem.PageShift)
	pr.mmapSem.RUnlock(p)
	return os.Cache.allocator.Frame(pg.frame.ID)
}

// majorFault brings (f, idx) into the cache, applying the fault read-around
// policy: a ReadAroundPages window unless MADV_RANDOM is set or the file has
// missed too often (mmap_miss > MMAP_LOTSAMISS). Returns nil if the target
// page raced away and the caller must retry.
func (pr *Process) majorFault(p *engine.Proc, v *vma, idx uint64) *cachedPage {
	os := pr.os
	p.BeginSpan("lx.major_fault")
	defer p.EndSpan()
	f := v.f
	f.mmapMiss++
	filePages := (f.size + PageSize - 1) / PageSize
	lo, hi := idx, idx+1
	if !v.kmmap && v.advice != iface.AdviceRandom && f.mmapMiss <= os.P.MmapLotsamiss {
		ra := uint64(os.P.ReadAroundPages)
		lo = idx / ra * ra
		hi = lo + ra
		if hi > filePages {
			hi = filePages
		}
	}

	// Publish locked pages for the absent part of the window.
	type owned struct {
		pg  *cachedPage
		idx uint64
	}
	var mine []owned
	var target *cachedPage
	for i := lo; i < hi; i++ {
		pg, owner := os.Cache.insertNew(p, f, i)
		if i == idx {
			target = pg
		}
		if owner {
			mine = append(mine, owned{pg, i})
		}
	}

	// Read contiguous runs of owned pages with one timed I/O each.
	for i := 0; i < len(mine); {
		j := i + 1
		for j < len(mine) && mine[j].idx == mine[j-1].idx+1 {
			j++
		}
		run := mine[i:j]
		bytes := len(run) * PageSize
		for _, o := range run {
			os.readPageContent(o.pg)
		}
		os.timedRead(p, f.devOff(run[0].idx*PageSize), bytes)
		i = j
	}
	doneAt := p.Now()
	for _, o := range mine {
		o.pg.io.Fire(doneAt)
		o.pg.io = nil
		if o.idx != idx {
			o.pg.readahead = true
		}
	}
	if target != nil {
		os.Cache.waitPage(p, target)
		f.majorFaults++
	}
	return target
}

// timedRead charges the kernel read path without content movement.
func (os *OS) timedRead(p *engine.Proc, off uint64, bytes int) {
	disk := os.FS.disk
	p.BeginSpan("lx.readahead_io")
	defer p.EndSpan()
	if disk.PMem {
		os.charge(p, "readahead", os.P.PMemBlockOverhead+os.C.MemcpyNoSIMD(bytes))
		done := disk.Timing.Submit(p.Now(), bytes, false)
		p.WaitUntil(done, engine.KindIOWait)
	} else {
		os.charge(p, "readahead", os.P.BlockLayerSubmit)
		done := disk.Timing.Submit(p.Now(), bytes, false)
		p.WaitUntil(done, engine.KindIOWait)
		os.charge(p, "readahead", os.P.BlockLayerComplete+os.C.InterruptDelivery+os.C.ContextSwitch)
	}
}

// readPageContent fills a page's frame from device content, skipping the
// copy entirely when both sides are all-zero (content-free experiments).
func (os *OS) readPageContent(pg *cachedPage) {
	off := pg.f.devOff(pg.idx * PageSize)
	if os.FS.disk.Content.HasRange(off, PageSize) {
		os.FS.disk.Content.ReadAt(off, pg.frame.Data())
	} else if pg.frame.HasData() {
		pg.frame.Reset()
	}
}

// Mprotect changes the mapping's protection. Downgrading to read-only
// rewrites the live PTEs and issues one batched shootdown; upgrading is lazy
// (shared-mapping stores always re-arm through write-protect faults).
func (m *Mapping) Mprotect(p *engine.Proc, readOnly bool) {
	m.os.charge(p, "syscall", m.os.C.Syscall+m.os.P.SyscallKernelPath)
	m.pr.mmapSem.Lock(p)
	if readOnly && !m.v.readOnly {
		changed := 0
		for va := m.v.start; va < m.v.end; va += PageSize {
			if e, ok := m.pr.PT.Lookup(va); ok && e.Flags.Has(pagetable.FlagWritable) {
				m.pr.PT.Protect(va, pagetable.FlagUser|pagetable.FlagAccessed)
				m.os.charge(p, "pte", m.os.C.PTEUpdate)
				changed++
			}
		}
		if changed > 0 {
			m.pr.shootdown(p, changed)
		}
	}
	m.v.readOnly = readOnly
	m.pr.mmapSem.Unlock(p)
}

// Mremap grows or shrinks the mapping. Growth relocates to a fresh virtual
// range, moving live PTEs (MREMAP_MAYMOVE semantics); shrinking unmaps the
// tail.
func (m *Mapping) Mremap(p *engine.Proc, newSize uint64) {
	m.os.charge(p, "syscall", m.os.C.Syscall+m.os.P.SyscallKernelPath)
	m.pr.mmapSem.Lock(p)
	newPages := (newSize + PageSize - 1) / PageSize
	oldPages := (m.v.end - m.v.start) / PageSize
	switch {
	case newPages == oldPages:
	case newPages < oldPages:
		unmapped := 0
		for va := m.v.start + newPages*PageSize; va < m.v.end; va += PageSize {
			if m.pr.PT.Unmap(va) {
				m.os.charge(p, "pte", m.os.C.PTEUpdate)
				unmapped++
				idx := (va - m.v.start) / PageSize
				if pg := m.os.Cache.find(p, m.f, idx); pg != nil {
					removeVA(pg, m.pr, va)
				}
			}
		}
		if unmapped > 0 {
			m.pr.shootdown(p, unmapped)
		}
		m.v.end = m.v.start + newPages*PageSize
	default:
		newStart := m.pr.nextVA
		m.pr.nextVA += (newPages + 16) * PageSize
		moved := 0
		for i := uint64(0); i < oldPages; i++ {
			oldVA := m.v.start + i*PageSize
			if e, ok := m.pr.PT.Lookup(oldVA); ok {
				m.pr.PT.Unmap(oldVA)
				m.pr.PT.Map(newStart+i*PageSize, e.Frame, e.Flags, pagetable.Size4K)
				m.os.charge(p, "pte", 2*m.os.C.PTEUpdate)
				if pg := m.os.Cache.find(p, m.f, i); pg != nil {
					removeVA(pg, m.pr, oldVA)
					pg.vas = append(pg.vas, mappedVA{pr: m.pr, va: newStart + i*PageSize})
				}
				moved++
			}
		}
		if moved > 0 {
			m.pr.shootdown(p, moved)
		}
		m.pr.vmas.remove(m.v)
		m.v.start, m.v.end = newStart, newStart+newPages*PageSize
		m.pr.vmas.insert(m.v)
	}
	m.size = newSize
	m.pr.mmapSem.Unlock(p)
}
