package host

import (
	"bytes"
	"testing"

	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
)

func TestIOURingRoundTrip(t *testing.T) {
	e, os := newNVMeOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 4*mib)
		ring := NewIOURing(os, f, 64)
		data := []byte("async payload")
		buf := make([]byte, len(data))
		copy(buf, data)
		ring.Prep(Sqe{Write: true, Off: 8192, Buf: buf, UserData: 1})
		ring.Enter(p)
		got := ring.WaitCqes(p, 1)
		if len(got) != 1 || got[0].UserData != 1 {
			t.Fatalf("write cqe = %+v", got)
		}
		rbuf := make([]byte, len(data))
		ring.Prep(Sqe{Off: 8192, Buf: rbuf, UserData: 2})
		ring.Enter(p)
		got = ring.WaitCqes(p, 1)
		if len(got) != 1 || got[0].UserData != 2 {
			t.Fatalf("read cqe = %+v", got)
		}
		if !bytes.Equal(rbuf, data) {
			t.Errorf("read back %q", rbuf)
		}
	})
}

func TestIOURingBatchingAmortizesSyscalls(t *testing.T) {
	e, os := newNVMeOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 16*mib)
		ring := NewIOURing(os, f, 256)
		const n = 64
		bufs := make([][]byte, n)
		for i := 0; i < n; i++ {
			bufs[i] = make([]byte, 4096)
			ring.Prep(Sqe{Off: uint64(i) * 4096, Buf: bufs[i], UserData: uint64(i)})
		}
		ring.Enter(p)
		done := ring.WaitCqes(p, n)
		if len(done) != n {
			t.Fatalf("reaped %d, want %d", len(done), n)
		}
		if ring.SyscallOps != 1 {
			t.Errorf("syscalls = %d, want 1 for the whole batch", ring.SyscallOps)
		}
		if ring.Inflight() != 0 {
			t.Errorf("inflight = %d", ring.Inflight())
		}
	})
}

func TestIOURingThroughputBeatsSyncButTailSuffers(t *testing.T) {
	// The §7.1 tradeoff: async batching raises throughput but the last
	// completion of a batch waits behind the whole queue.
	const n = 128
	// Synchronous: n direct preads back to back.
	eSync, osSync := newNVMeOS(16 * mib)
	var syncElapsed uint64
	run1(eSync, func(p *engine.Proc) {
		f := osSync.OpenFile(osSync.FS.Create(p, "f", 16*mib), true)
		start := p.Now()
		buf := make([]byte, 4096)
		for i := 0; i < n; i++ {
			f.Pread(p, buf, uint64(i)*4096)
		}
		syncElapsed = p.Now() - start
	})
	// io_uring: one batch of n.
	eAsync, osAsync := newNVMeOS(16 * mib)
	var asyncElapsed, lastGap uint64
	run1(eAsync, func(p *engine.Proc) {
		f := osAsync.FS.Create(p, "f", 16*mib)
		ring := NewIOURing(osAsync, f, 2*n)
		start := p.Now()
		for i := 0; i < n; i++ {
			ring.Prep(Sqe{Off: uint64(i) * 4096, Buf: make([]byte, 4096), UserData: uint64(i)})
		}
		ring.Enter(p)
		cqes := ring.WaitCqes(p, n)
		asyncElapsed = p.Now() - start
		first := cqes[0].DoneAt
		last := cqes[len(cqes)-1].DoneAt
		lastGap = last - first
	})
	if asyncElapsed >= syncElapsed {
		t.Errorf("io_uring (%d) not faster than sync (%d) for a batch", asyncElapsed, syncElapsed)
	}
	// Tail: the last op completed far later than the first (queueing).
	if lastGap < device.DefaultNVMeConfig().ServiceInterval*(n/2) {
		t.Errorf("tail gap %d too small — batching should spread completions", lastGap)
	}
}

func TestIOURingDepthLimit(t *testing.T) {
	e, os := newNVMeOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 1*mib)
		ring := NewIOURing(os, f, 2)
		ring.Prep(Sqe{Off: 0, Buf: make([]byte, 512)})
		ring.Prep(Sqe{Off: 4096, Buf: make([]byte, 512)})
		defer func() {
			if recover() == nil {
				t.Error("expected panic past ring depth")
			}
		}()
		ring.Prep(Sqe{Off: 8192, Buf: make([]byte, 512)})
	})
}
