package host

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
)

func TestIOURingRoundTrip(t *testing.T) {
	e, os := newNVMeOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 4*mib)
		ring := NewIOURing(os, f, 64)
		data := []byte("async payload")
		buf := make([]byte, len(data))
		copy(buf, data)
		ring.Prep(Sqe{Write: true, Off: 8192, Buf: buf, UserData: 1})
		ring.Enter(p)
		got := ring.WaitCqes(p, 1)
		if len(got) != 1 || got[0].UserData != 1 {
			t.Fatalf("write cqe = %+v", got)
		}
		rbuf := make([]byte, len(data))
		ring.Prep(Sqe{Off: 8192, Buf: rbuf, UserData: 2})
		ring.Enter(p)
		got = ring.WaitCqes(p, 1)
		if len(got) != 1 || got[0].UserData != 2 {
			t.Fatalf("read cqe = %+v", got)
		}
		if !bytes.Equal(rbuf, data) {
			t.Errorf("read back %q", rbuf)
		}
	})
}

func TestIOURingBatchingAmortizesSyscalls(t *testing.T) {
	e, os := newNVMeOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 16*mib)
		ring := NewIOURing(os, f, 256)
		const n = 64
		bufs := make([][]byte, n)
		for i := 0; i < n; i++ {
			bufs[i] = make([]byte, 4096)
			ring.Prep(Sqe{Off: uint64(i) * 4096, Buf: bufs[i], UserData: uint64(i)})
		}
		ring.Enter(p)
		done := ring.WaitCqes(p, n)
		if len(done) != n {
			t.Fatalf("reaped %d, want %d", len(done), n)
		}
		if ring.SyscallOps != 1 {
			t.Errorf("syscalls = %d, want 1 for the whole batch", ring.SyscallOps)
		}
		if ring.Inflight() != 0 {
			t.Errorf("inflight = %d", ring.Inflight())
		}
	})
}

func TestIOURingThroughputBeatsSyncButTailSuffers(t *testing.T) {
	// The §7.1 tradeoff: async batching raises throughput but the last
	// completion of a batch waits behind the whole queue.
	const n = 128
	// Synchronous: n direct preads back to back.
	eSync, osSync := newNVMeOS(16 * mib)
	var syncElapsed uint64
	run1(eSync, func(p *engine.Proc) {
		f := osSync.OpenFile(osSync.FS.Create(p, "f", 16*mib), true)
		start := p.Now()
		buf := make([]byte, 4096)
		for i := 0; i < n; i++ {
			f.Pread(p, buf, uint64(i)*4096)
		}
		syncElapsed = p.Now() - start
	})
	// io_uring: one batch of n.
	eAsync, osAsync := newNVMeOS(16 * mib)
	var asyncElapsed, lastGap uint64
	run1(eAsync, func(p *engine.Proc) {
		f := osAsync.FS.Create(p, "f", 16*mib)
		ring := NewIOURing(osAsync, f, 2*n)
		start := p.Now()
		for i := 0; i < n; i++ {
			ring.Prep(Sqe{Off: uint64(i) * 4096, Buf: make([]byte, 4096), UserData: uint64(i)})
		}
		ring.Enter(p)
		cqes := ring.WaitCqes(p, n)
		asyncElapsed = p.Now() - start
		first := cqes[0].DoneAt
		last := cqes[len(cqes)-1].DoneAt
		lastGap = last - first
	})
	if asyncElapsed >= syncElapsed {
		t.Errorf("io_uring (%d) not faster than sync (%d) for a batch", asyncElapsed, syncElapsed)
	}
	// Tail: the last op completed far later than the first (queueing).
	if lastGap < device.DefaultNVMeConfig().ServiceInterval*(n/2) {
		t.Errorf("tail gap %d too small — batching should spread completions", lastGap)
	}
}

func TestIOURingInjectedErrors(t *testing.T) {
	// Device faults surface on the completion side (Cqe.Err, the simulated
	// negative cqe->res): the op is still charged device timing but moves no
	// data.
	e := engine.New(engine.Config{NumCPUs: 8, Seed: 1})
	nv := device.NewNVMe(256*mib, device.DefaultNVMeConfig())
	os := NewOS(e, NewNVMeDisk("nvme0", nv), 16*mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 4*mib)
		nv.InjectFaults("nvme0", &device.FaultPlan{Rules: []device.FaultRule{
			{Kind: device.FaultTransientWrite, After: 1, Limit: 1},
			{Kind: device.FaultPermanentRead, Off: f.devOff(0), Len: 4096, After: 1},
			{Kind: device.FaultLatencySpike, Off: f.devOff(16384), Len: 4096,
				After: 1, Delay: 99999},
		}})
		ring := NewIOURing(os, f, 64)
		do := func(sqe Sqe) Cqe {
			ring.Prep(sqe)
			ring.Enter(p)
			return ring.WaitCqes(p, 1)[0]
		}
		data := bytes.Repeat([]byte{0xAB}, 4096)
		// First write fails transiently; nothing reaches the media.
		cqe := do(Sqe{Write: true, Off: 8192, Buf: data, UserData: 1})
		var de *device.IOError
		if !errors.As(cqe.Err, &de) || !de.Transient() {
			t.Fatalf("first write cqe.Err = %v, want transient *IOError", cqe.Err)
		}
		rbuf := make([]byte, 4096)
		if cqe := do(Sqe{Off: 8192, Buf: rbuf, UserData: 2}); cqe.Err != nil {
			t.Fatalf("read after failed write: %v", cqe.Err)
		}
		if !bytes.Equal(rbuf, make([]byte, 4096)) {
			t.Error("failed write leaked data to the device")
		}
		// The resubmitted write succeeds (the transient rule is spent).
		if cqe := do(Sqe{Write: true, Off: 8192, Buf: data, UserData: 3}); cqe.Err != nil {
			t.Fatalf("retried write cqe.Err = %v", cqe.Err)
		}
		if cqe := do(Sqe{Off: 8192, Buf: rbuf, UserData: 4}); cqe.Err != nil || !bytes.Equal(rbuf, data) {
			t.Fatalf("read back after retry: err=%v data=%x", cqe.Err, rbuf[:8])
		}
		// Reads of the permanently bad LBA keep failing.
		for i := 0; i < 3; i++ {
			cqe := do(Sqe{Off: 0, Buf: rbuf, UserData: uint64(10 + i)})
			if !errors.As(cqe.Err, &de) || de.Transient() {
				t.Fatalf("bad-LBA read %d: cqe.Err = %v, want permanent *IOError", i, cqe.Err)
			}
		}
		// A latency spike delays the completion without failing it.
		t0 := p.Now()
		cqe = do(Sqe{Off: 16384, Buf: rbuf, UserData: 20})
		if cqe.Err != nil {
			t.Fatalf("spiked read failed: %v", cqe.Err)
		}
		if cqe.DoneAt < t0+99999 {
			t.Errorf("spiked read done at %d, want >= %d", cqe.DoneAt, t0+99999)
		}
	})
}

// TestIOURingCrashDropsInflightWhole pins the per-SQE durability point: each
// submitted write becomes durable — whole — at its own completion time, so a
// crash landing between two completions of one batch keeps exactly the
// finished entries and discards the rest. No entry is ever half-applied: every
// page reads back as either its full pre-batch or full post-batch content.
func TestIOURingCrashDropsInflightWhole(t *testing.T) {
	e, os := newNVMeOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		const n = 16
		f := os.FS.Create(p, "f", 1*mib)
		st := os.FS.disk.Content
		ring := NewIOURing(os, f, 2*n)
		pat := func(i int, phase byte) []byte {
			b := make([]byte, 4096)
			for j := range b {
				b[j] = byte(i)*13 ^ phase ^ byte(j)
			}
			return b
		}
		// Phase A: baseline content, fully durable.
		for i := 0; i < n; i++ {
			ring.Prep(Sqe{Write: true, Off: uint64(i) * 4096, Buf: pat(i, 0xA0), UserData: uint64(i)})
		}
		ring.Enter(p)
		ring.WaitCqes(p, n)
		st.SettleAll()
		// Phase B: one batch overwriting every page; crash mid-batch, between
		// the n/2-th and n/2+1-th completions. (The cqes are reaped only to
		// learn the completion schedule — durability was fixed at Enter time,
		// reaped or not.)
		for i := 0; i < n; i++ {
			ring.Prep(Sqe{Write: true, Off: uint64(i) * 4096, Buf: pat(i, 0xB1), UserData: uint64(i)})
		}
		ring.Enter(p)
		cqes := ring.WaitCqes(p, n)
		if len(cqes) != n {
			t.Fatalf("reaped %d cqes, want %d", len(cqes), n)
		}
		doneAt := make(map[uint64]uint64, n)
		for _, c := range cqes {
			doneAt[c.UserData] = c.DoneAt
		}
		crashCycle := (cqes[n/2-1].DoneAt + cqes[n/2].DoneAt) / 2
		res := st.Crash(crashCycle, rand.New(rand.NewSource(5)), 0)
		wantDropped := 0
		buf := make([]byte, 4096)
		for i := 0; i < n; i++ {
			completed := doneAt[uint64(i)] <= crashCycle
			if !completed {
				wantDropped++
			}
			st.ReadAt(f.devOff(uint64(i)*4096), buf)
			switch {
			case bytes.Equal(buf, pat(i, 0xB1)):
				if !completed {
					t.Errorf("page %d: in-flight write survived the crash", i)
				}
			case bytes.Equal(buf, pat(i, 0xA0)):
				if completed {
					t.Errorf("page %d: completed write lost at the crash", i)
				}
			default:
				t.Errorf("page %d: half-applied content after crash", i)
			}
		}
		if wantDropped == 0 || wantDropped == n {
			t.Fatalf("crash cycle split nothing (dropped %d of %d)", wantDropped, n)
		}
		if res.DroppedBlocks != wantDropped {
			t.Errorf("DroppedBlocks = %d, want %d", res.DroppedBlocks, wantDropped)
		}
	})
}

func TestIOURingDepthLimit(t *testing.T) {
	e, os := newNVMeOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 1*mib)
		ring := NewIOURing(os, f, 2)
		ring.Prep(Sqe{Off: 0, Buf: make([]byte, 512)})
		ring.Prep(Sqe{Off: 4096, Buf: make([]byte, 512)})
		defer func() {
			if recover() == nil {
				t.Error("expected panic past ring depth")
			}
		}()
		ring.Prep(Sqe{Off: 8192, Buf: make([]byte, 512)})
	})
}
