package host

import "fmt"

// CheckInvariants audits the cross-structure consistency of the host at a
// quiescent point (no process running, no I/O in flight). Tests call it
// after heavy workloads; it returns the first violation found.
func (os *OS) CheckInvariants() error {
	c := os.Cache
	// Every page in every file's radix tree is counted, resident on
	// exactly one LRU list, holds a frame, and has consistent dirty state.
	total, dirty := 0, 0
	for _, f := range os.FS.files {
		fileDirty := 0
		for idx, pg := range f.pages {
			total++
			if pg.f != f || pg.idx != idx {
				return fmt.Errorf("page (%s,%d) misfiled as (%s,%d)",
					f.name, idx, pg.f.name, pg.idx)
			}
			if pg.frame == nil {
				return fmt.Errorf("page (%s,%d) has no frame", f.name, idx)
			}
			if pg.io != nil && !pg.io.Fired() {
				return fmt.Errorf("page (%s,%d) has in-flight I/O at quiesce", f.name, idx)
			}
			if !pg.inLRU {
				return fmt.Errorf("page (%s,%d) resident but not on an LRU list", f.name, idx)
			}
			if pg.dirty {
				dirty++
				fileDirty++
			}
			// Reverse mappings agree with the page tables.
			for _, mv := range pg.vas {
				e, ok := mv.pr.PT.Lookup(mv.va)
				if !ok {
					return fmt.Errorf("page (%s,%d): rmap va %#x not mapped in process %d",
						f.name, idx, mv.va, mv.pr.ID)
				}
				if e.Frame != pg.frame.ID {
					return fmt.Errorf("page (%s,%d): pte frame %d != page frame %d",
						f.name, idx, e.Frame, pg.frame.ID)
				}
			}
		}
		if fileDirty != f.nrDirty {
			return fmt.Errorf("file %s: nrDirty %d != actual %d", f.name, f.nrDirty, fileDirty)
		}
	}
	if total != c.nrPages {
		return fmt.Errorf("nrPages %d != radix total %d", c.nrPages, total)
	}
	if dirty != c.nrDirty {
		return fmt.Errorf("nrDirty %d != actual %d", c.nrDirty, dirty)
	}
	if c.active.n+c.inactive.n != c.nrPages {
		return fmt.Errorf("LRU lists %d+%d != nrPages %d", c.active.n, c.inactive.n, c.nrPages)
	}
	if got := c.allocator.Allocated(); got != uint64(total) {
		return fmt.Errorf("frames allocated %d != resident pages %d", got, total)
	}
	// Every present PTE in every process points at a frame owned by a
	// cached page mapping that (process, va).
	frames := make(map[uint64]*cachedPage)
	for _, f := range os.FS.files {
		for _, pg := range f.pages {
			frames[pg.frame.ID] = pg
		}
	}
	for _, pr := range os.procs {
		for _, v := range pr.vmas.list {
			for va := v.start; va < v.end; va += PageSize {
				e, ok := pr.PT.Lookup(va)
				if !ok {
					continue
				}
				pg, known := frames[e.Frame]
				if !known {
					return fmt.Errorf("process %d: va %#x maps unknown frame %d",
						pr.ID, va, e.Frame)
				}
				found := false
				for _, mv := range pg.vas {
					if mv.pr == pr && mv.va == va {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("process %d: va %#x mapped but missing from rmap of (%s,%d)",
						pr.ID, va, pg.f.name, pg.idx)
				}
			}
		}
	}
	return nil
}
