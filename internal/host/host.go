// Package host simulates the Linux side of the paper's testbed: an
// extent-based filesystem over a block device, the kernel page cache (per-file
// radix trees guarded by tree_lock, a global LRU, dirty tracking and
// writeback), the mmap/page-fault path with 4.14-era fault-around readahead
// heuristics, buffered and O_DIRECT read/write syscalls, and the hypervisor
// services (vmcalls, EPT memory grants) that Aquila relies on for its
// uncommon-path operations.
//
// The structures are real implementations — a shared-file mmap workload
// really does serialize on that file's tree_lock, reclaim really walks a
// global LRU — so the scalability behaviour of Figures 5, 6 and 10 emerges
// from simulated lock queueing rather than being scripted.
package host

import (
	"fmt"

	"aquila/internal/obs"
	"aquila/internal/sim/cpu"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
	"aquila/internal/sim/mem"
	"aquila/internal/sim/pagetable"
)

// PageSize is the base page size.
const PageSize = mem.PageSize

// Params are the host kernel's software-path cost constants (cycles) and
// policy knobs. Defaults model Linux 4.14 on the paper's Xeon testbed.
type Params struct {
	// VMALookup is an rb-tree VMA lookup under mmap_sem.
	VMALookup uint64
	// RadixLookup is a page-cache radix-tree lookup (excluding the lock).
	RadixLookup uint64
	// RadixInsert is a radix-tree insertion.
	RadixInsert uint64
	// LRUUpdate is moving a page on the LRU lists.
	LRUUpdate uint64
	// FaultEntry is page-fault bookkeeping beyond the bare trap.
	FaultEntry uint64
	// BlockLayerSubmit is bio allocation + submission through the block
	// layer and NVMe driver.
	BlockLayerSubmit uint64
	// BlockLayerComplete is completion processing (softirq).
	BlockLayerComplete uint64
	// PMemBlockOverhead is the pmem block driver's per-request overhead.
	PMemBlockOverhead uint64
	// CopyToUser is charged per 4 KB moved between kernel and user
	// buffers for buffered syscalls (non-SIMD copy, §3.3).
	CopyToUser uint64
	// ShootdownBase and ShootdownPerCPU model the sender-side cost of a
	// kernel TLB shootdown (IPI broadcast + wait for acks).
	ShootdownBase   uint64
	ShootdownPerCPU uint64
	// SyscallKernelPath is generic syscall-path bookkeeping (fdtable,
	// vfs dispatch) beyond the bare trap.
	SyscallKernelPath uint64
	// DirectIOPathCost is the O_DIRECT setup cost per request
	// (get_user_pages, bio mapping, dio bookkeeping).
	DirectIOPathCost uint64
	// ReclaimPerPage is direct reclaim's per-victim cost beyond the
	// structure updates (page_referenced, rmap walk in try_to_unmap).
	ReclaimPerPage uint64

	// ReadAroundPages is the mmap fault read-around window (128 KB).
	ReadAroundPages int
	// MmapLotsamiss is the miss count after which fault read-around is
	// abandoned (MMAP_LOTSAMISS).
	MmapLotsamiss int
	// ReclaimBatch is the number of pages direct reclaim evicts at once
	// (SWAP_CLUSTER_MAX).
	ReclaimBatch int
	// DirtyRatio is the fraction of cache pages that may be dirty before
	// writers are throttled into writeback.
	DirtyRatio float64
}

// DefaultParams returns the calibrated host parameter set.
func DefaultParams() Params {
	return Params{
		VMALookup:          180,
		RadixLookup:        160,
		RadixInsert:        250,
		LRUUpdate:          120,
		FaultEntry:         650,
		BlockLayerSubmit:   1400,
		BlockLayerComplete: 1200,
		PMemBlockOverhead:  240,
		CopyToUser:         2400,
		ShootdownBase:      2000,
		ShootdownPerCPU:    250,
		SyscallKernelPath:  400,
		DirectIOPathCost:   7000,
		ReclaimPerPage:     1800,
		ReadAroundPages:    32,
		MmapLotsamiss:      100,
		ReclaimBatch:       32,
		DirtyRatio:         0.10,
	}
}

// Disk couples device content with a timing model and a device class.
type Disk struct {
	Name    string
	Content *device.Store
	Timing  device.Timing
	PMem    bool // byte-addressable (kernel path is a memcpy, no interrupt)
}

// NewPMemDisk wraps a pmem device as a host block device.
func NewPMemDisk(name string, d *device.PMem) *Disk {
	return &Disk{Name: name, Content: d.Store, Timing: d, PMem: true}
}

// NewNVMeDisk wraps an NVMe device as a host block device.
func NewNVMeDisk(name string, d *device.NVMe) *Disk {
	return &Disk{Name: name, Content: d.Store, Timing: d, PMem: false}
}

// Process is one simulated process: its own page table (ASID-tagged in the
// shared hardware TLBs), VMA set under its own mmap_sem, and mm_cpumask.
// Shared file mappings from different processes meet in the one page cache —
// the sharing §2.1 builds on.
type Process struct {
	os *OS
	// ID is the process id (1-based; NewOS creates process 1).
	ID      int
	PT      *pagetable.Table
	mmapSem *engine.RWMutex
	vmas    *vmaSet
	// mmMask tracks CPUs that have touched this address space
	// (mm_cpumask): TLB shootdowns target only these.
	mmMask []bool
	// nextVA is the mmap area allocation cursor.
	nextVA uint64
}

// noteCPU records a CPU in the process's mm_cpumask.
func (pr *Process) noteCPU(cpu int) { pr.mmMask[cpu] = true }

// OS is one simulated Linux instance hosting one or more (multi-threaded)
// processes. All paper experiments use a single process; multi-process
// sharing of file mappings is exercised by tests.
type OS struct {
	E     *engine.Engine
	C     cpu.Costs
	P     Params
	FS    *FS
	Cache *PageCache
	TLBs  *cpu.TLBSet
	HV    *Hypervisor

	procs []*Process
	// PT aliases the default process's page table (compatibility for
	// single-process callers and tests).
	PT *pagetable.Table

	// Reg is the metrics registry (never nil; private unless AttachObs is
	// called). Break attributes kernel fault-path cycles to components,
	// interned as "linux_fault_cycles".
	Reg   *obs.Registry
	Break *obs.Breakdown
}

// AttachObs points the OS at a shared metrics registry. label (may be empty)
// distinguishes this OS's series when several share a registry. Call right
// after NewOS, before the simulation runs: breakdowns accumulated so far stay
// in the previous registry.
func (os *OS) AttachObs(reg *obs.Registry, label string) {
	if reg == nil {
		return
	}
	os.Reg = reg
	var labels []obs.Label
	if label != "" {
		labels = append(labels, obs.L("world", label))
	}
	os.Break = reg.Breakdown("linux_fault_cycles", labels...)
}

// charge advances p by cyc system cycles and attributes them to a breakdown
// category. The advance is identical to a bare AdvanceSystem, so attribution
// never alters simulated timing.
func (os *OS) charge(p *engine.Proc, cat string, cyc uint64) {
	p.AdvanceSystem(cyc)
	os.Break.Add(cat, cyc)
}

// NewProcess forks a fresh address space sharing this OS's page cache.
func (os *OS) NewProcess() *Process {
	pr := &Process{
		os:      os,
		ID:      len(os.procs) + 1,
		PT:      pagetable.New(uint32(len(os.procs) + 1)),
		mmapSem: engine.NewRWMutex(os.E, fmt.Sprintf("mmap_sem.%d", len(os.procs)+1)),
		vmas:    newVMASet(),
		mmMask:  make([]bool, os.E.NumCPUs()),
		nextVA:  0x7f00_0000_0000,
	}
	os.procs = append(os.procs, pr)
	return pr
}

// DefaultProcess returns process 1, the one single-process callers use.
func (os *OS) DefaultProcess() *Process { return os.procs[0] }

// NewOS boots a host with the given disk and page-cache capacity (the
// cgroup memory limit of §5).
func NewOS(e *engine.Engine, disk *Disk, cacheBytes uint64) *OS {
	os := &OS{
		E:    e,
		C:    cpu.Default(),
		P:    DefaultParams(),
		TLBs: cpu.NewTLBSet(e.NumCPUs(), 1536, 17),
		Reg:  obs.NewRegistry(),
	}
	os.Break = os.Reg.Breakdown("linux_fault_cycles")
	os.FS = newFS(os, disk)
	os.Cache = newPageCache(os, cacheBytes)
	os.HV = newHypervisor(os)
	os.PT = os.NewProcess().PT
	return os
}

// Disk returns the block device the filesystem lives on.
func (os *OS) Disk() *Disk { return os.FS.disk }

// blockRead moves bytes from the disk into a kernel buffer, charging the
// full kernel block-layer path. For pmem the transfer is a kernel memcpy;
// for NVMe the process sleeps until the interrupt-driven completion.
func (os *OS) blockRead(p *engine.Proc, off uint64, buf []byte) {
	disk := os.FS.disk
	p.BeginSpan("lx.block_io")
	defer p.EndSpan()
	if disk.PMem {
		os.charge(p, "block-io", os.P.PMemBlockOverhead+os.C.MemcpyNoSIMD(len(buf)))
		done := disk.Timing.Submit(p.Now(), len(buf), false)
		p.WaitUntil(done, engine.KindIOWait)
	} else {
		os.charge(p, "block-io", os.P.BlockLayerSubmit)
		done := disk.Timing.Submit(p.Now(), len(buf), false)
		p.WaitUntil(done, engine.KindIOWait)
		os.charge(p, "block-io", os.P.BlockLayerComplete+os.C.InterruptDelivery+os.C.ContextSwitch)
	}
	disk.Content.ReadAt(off, buf)
}

// blockWrite moves bytes from a kernel buffer to the disk. The staged
// content becomes durable at the device completion cycle, not at submission.
func (os *OS) blockWrite(p *engine.Proc, off uint64, buf []byte) {
	disk := os.FS.disk
	disk.Content.WriteAt(off, buf)
	p.BeginSpan("lx.block_io")
	defer p.EndSpan()
	var done uint64
	if disk.PMem {
		os.charge(p, "block-io", os.P.PMemBlockOverhead+os.C.MemcpyNoSIMD(len(buf)))
		done = disk.Timing.Submit(p.Now(), len(buf), true)
		disk.Content.Persist(off, len(buf), done)
		p.WaitUntil(done, engine.KindIOWait)
	} else {
		os.charge(p, "block-io", os.P.BlockLayerSubmit)
		done = disk.Timing.Submit(p.Now(), len(buf), true)
		disk.Content.Persist(off, len(buf), done)
		p.WaitUntil(done, engine.KindIOWait)
		os.charge(p, "block-io", os.P.BlockLayerComplete+os.C.InterruptDelivery+os.C.ContextSwitch)
	}
}

// shootdown models a kernel TLB shootdown for a batch of already-unmapped
// pages: the sender broadcasts IPIs and waits for acks; every other CPU
// absorbs an invalidation interrupt. Batched per reclaim cycle, like the
// kernel's reclaim-time TLB batching.
func (pr *Process) shootdown(p *engine.Proc, pages int) {
	os := pr.os
	p.BeginSpan("lx.shootdown")
	defer p.EndSpan()
	targets := 0
	for c, used := range pr.mmMask {
		if used && c != p.CPU() {
			targets++
		}
	}
	os.charge(p, "shootdown", os.P.ShootdownBase+os.P.ShootdownPerCPU*uint64(targets))
	recv := os.C.IPIReceive + os.C.TLBFlushAll
	for c, used := range pr.mmMask {
		if !used || c == p.CPU() {
			continue
		}
		os.E.PostIRQ(c, recv)
		os.TLBs.CPU(c).FlushAll()
	}
	os.TLBs.CPU(p.CPU()).FlushAll()
	os.charge(p, "shootdown", os.C.TLBFlushAll)
	_ = pages
}
