package host

import (
	"fmt"
	"sort"

	"aquila/internal/sim/engine"
)

// FS is a flat-namespace, extent-based filesystem over one block device:
// every file occupies a single contiguous extent sized at creation. This
// matches how the evaluated systems use storage (RocksDB's fixed-size SSTs,
// Kreon's single file, Ligra's one heap file) while keeping block mapping
// trivial, as SPDK's Blobstore does on the other world.
type FS struct {
	os    *OS
	disk  *Disk
	files map[string]*FSFile
	// free extents, sorted by offset, first-fit allocation.
	free []extent
	ids  uint64
}

type extent struct {
	off, len uint64
}

// FSFile is one file: a contiguous extent on the disk.
type FSFile struct {
	fs   *FS
	id   uint64
	name string
	base uint64 // device offset of the extent
	cap  uint64 // extent length
	size uint64 // current logical size

	// Page-cache state: radix tree + per-file tree_lock.
	treeLock *engine.Mutex
	pages    map[uint64]*cachedPage // page index -> page
	nrDirty  int

	// readahead state (struct file_ra_state).
	mmapMiss int
	lastRead uint64 // sequentiality detector for buffered reads

	majorFaults uint64
	deleted     bool
}

// MajorFaults returns the number of major faults served for this file.
func (f *FSFile) MajorFaults() uint64 { return f.majorFaults }

func newFS(os *OS, disk *Disk) *FS {
	return &FS{
		os:    os,
		disk:  disk,
		files: make(map[string]*FSFile),
		free:  []extent{{0, disk.Content.Capacity()}},
	}
}

// Create allocates a file with a fixed-capacity extent. The logical size
// starts at `size` (pre-sized files, as all evaluated applications use).
func (fs *FS) Create(p *engine.Proc, name string, size uint64) *FSFile {
	if _, ok := fs.files[name]; ok {
		panic(fmt.Sprintf("host: create of existing file %q", name))
	}
	p.AdvanceSystem(fs.os.C.Syscall + fs.os.P.SyscallKernelPath)
	capBytes := (size + PageSize - 1) / PageSize * PageSize
	if capBytes == 0 {
		capBytes = PageSize
	}
	base, ok := fs.allocExtent(capBytes)
	if !ok {
		panic(fmt.Sprintf("host: filesystem full creating %q (%d bytes)", name, capBytes))
	}
	fs.ids++
	f := &FSFile{
		fs:       fs,
		id:       fs.ids,
		name:     name,
		base:     base,
		cap:      capBytes,
		size:     size,
		treeLock: engine.NewMutex(fs.os.E, "tree_lock:"+name),
		pages:    make(map[uint64]*cachedPage),
	}
	fs.files[name] = f
	return f
}

// Open returns an existing file.
func (fs *FS) Open(p *engine.Proc, name string) *FSFile {
	p.AdvanceSystem(fs.os.C.Syscall + fs.os.P.SyscallKernelPath)
	f, ok := fs.files[name]
	if !ok {
		panic(fmt.Sprintf("host: open of missing file %q", name))
	}
	return f
}

// Exists reports whether a file exists (no cost: test helper).
func (fs *FS) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// Delete removes a file, dropping its cached pages and freeing its extent.
func (fs *FS) Delete(p *engine.Proc, name string) {
	f, ok := fs.files[name]
	if !ok {
		return
	}
	p.AdvanceSystem(fs.os.C.Syscall + fs.os.P.SyscallKernelPath)
	fs.os.Cache.truncate(p, f)
	f.deleted = true
	delete(fs.files, name)
	fs.disk.Content.Discard(f.base, f.cap)
	fs.freeExtent(extent{f.base, f.cap})
}

func (fs *FS) allocExtent(n uint64) (uint64, bool) {
	for i, e := range fs.free {
		if e.len >= n {
			fs.free[i] = extent{e.off + n, e.len - n}
			if fs.free[i].len == 0 {
				fs.free = append(fs.free[:i], fs.free[i+1:]...)
			}
			return e.off, true
		}
	}
	return 0, false
}

func (fs *FS) freeExtent(e extent) {
	fs.free = append(fs.free, e)
	sort.Slice(fs.free, func(i, j int) bool { return fs.free[i].off < fs.free[j].off })
	// Coalesce adjacent extents.
	out := fs.free[:0]
	for _, x := range fs.free {
		if n := len(out); n > 0 && out[n-1].off+out[n-1].len == x.off {
			out[n-1].len += x.len
		} else {
			out = append(out, x)
		}
	}
	fs.free = out
}

// Name returns the file name.
func (f *FSFile) Name() string { return f.name }

// Size returns the logical size.
func (f *FSFile) Size() uint64 { return f.size }

// Capacity returns the extent capacity.
func (f *FSFile) Capacity() uint64 { return f.cap }

// SetSize grows the logical size up to the extent capacity (append).
func (f *FSFile) SetSize(n uint64) {
	if n > f.cap {
		panic(fmt.Sprintf("host: file %q size %d beyond capacity %d", f.name, n, f.cap))
	}
	f.size = n
}

// devOff maps a file offset to a device offset.
func (f *FSFile) devOff(off uint64) uint64 { return f.base + off }

// DevOffset maps a file offset to a device offset. Exposed for Aquila's I/O
// engines, which access files on the host filesystem directly (DAX) or via
// host direct I/O.
func (f *FSFile) DevOffset(off uint64) uint64 { return f.devOff(off) }
