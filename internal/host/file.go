package host

import (
	"fmt"

	"aquila/internal/iface"
	"aquila/internal/sim/engine"
)

// File is syscall-based access to a host file. Direct selects O_DIRECT
// (bypassing the page cache), the mode RocksDB's recommended configuration
// uses together with its user-space block cache.
type File struct {
	os     *OS
	f      *FSFile
	Direct bool
}

var _ iface.File = (*File)(nil)

// OpenFile wraps an FS file for syscall I/O.
func (os *OS) OpenFile(f *FSFile, direct bool) *File {
	return &File{os: os, f: f, Direct: direct}
}

// Name implements iface.File.
func (hf *File) Name() string { return hf.f.name }

// Size implements iface.File.
func (hf *File) Size() uint64 { return hf.f.size }

// Pread implements iface.File. The host path models fault injection only on
// the io_uring engine (see iouring.go); plain syscalls always succeed.
func (hf *File) Pread(p *engine.Proc, buf []byte, off uint64) error {
	hf.checkRange(off, len(buf))
	p.AdvanceSystem(hf.os.C.Syscall + hf.os.P.SyscallKernelPath)
	if hf.Direct {
		p.AdvanceSystem(hf.os.P.DirectIOPathCost)
		hf.os.blockRead(p, hf.f.devOff(off), buf)
		return nil
	}
	hf.bufferedRead(p, buf, off)
	hf.f.lastRead = off + uint64(len(buf))
	return nil
}

// Pwrite implements iface.File.
func (hf *File) Pwrite(p *engine.Proc, buf []byte, off uint64) error {
	hf.checkRange(off, len(buf))
	p.AdvanceSystem(hf.os.C.Syscall + hf.os.P.SyscallKernelPath)
	if off+uint64(len(buf)) > hf.f.size {
		hf.f.SetSize(off + uint64(len(buf)))
	}
	if hf.Direct {
		p.AdvanceSystem(hf.os.P.DirectIOPathCost)
		hf.os.blockWrite(p, hf.f.devOff(off), buf)
		return nil
	}
	hf.bufferedWrite(p, buf, off)
	return nil
}

// Fsync implements iface.File.
func (hf *File) Fsync(p *engine.Proc) error {
	p.BeginSpan("lx.fsync")
	defer p.EndSpan()
	p.AdvanceSystem(hf.os.C.Syscall + hf.os.P.SyscallKernelPath)
	if !hf.Direct {
		hf.os.Cache.fsyncFile(p, hf.f)
	}
	return nil
}

func (hf *File) checkRange(off uint64, n int) {
	if off+uint64(n) > hf.f.cap {
		panic(fmt.Sprintf("host: file %q access [%d,%d) beyond capacity %d",
			hf.f.name, off, off+uint64(n), hf.f.cap))
	}
}

// bufferedRead serves a read through the page cache: per-page lookup under
// tree_lock, copy_to_user on hits, device fill (with sequential readahead)
// on misses.
func (hf *File) bufferedRead(p *engine.Proc, buf []byte, off uint64) {
	os, f := hf.os, hf.f
	sequential := off == f.lastRead
	for n := 0; n < len(buf); {
		cur := off + uint64(n)
		idx := cur / PageSize
		po := int(cur % PageSize)
		chunk := PageSize - po
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		var pg *cachedPage
		for {
			pg = os.Cache.find(p, f, idx)
			if pg == nil {
				hi := idx + 1
				if sequential {
					hi = idx + uint64(os.P.ReadAroundPages)
				}
				if max := (f.size + PageSize - 1) / PageSize; hi > max {
					hi = max
				}
				pg = hf.fillPages(p, idx, hi)
			}
			if pg.io != nil && !pg.io.Fired() {
				os.Cache.waitPage(p, pg) // may be reclaimed by wake-up
				continue
			}
			break
		}
		os.Cache.touch(p, pg)
		pg.pins++
		copyFromFrame(buf[n:n+chunk], pg.frame, po)
		p.AdvanceSystem(os.P.CopyToUser * uint64(chunk) / PageSize)
		pg.pins--
		n += chunk
	}
}

// fillPages reads pages [lo, hi) into the cache, returning the page at lo.
func (hf *File) fillPages(p *engine.Proc, lo, hi uint64) *cachedPage {
	os, f := hf.os, hf.f
	type owned struct {
		pg  *cachedPage
		idx uint64
	}
	var mine []owned
	var target *cachedPage
	for i := lo; i < hi; i++ {
		pg, owner := os.Cache.insertNew(p, f, i)
		if i == lo {
			target = pg
		}
		if owner {
			mine = append(mine, owned{pg, i})
		}
	}
	for i := 0; i < len(mine); {
		j := i + 1
		for j < len(mine) && mine[j].idx == mine[j-1].idx+1 {
			j++
		}
		run := mine[i:j]
		for _, o := range run {
			os.readPageContent(o.pg)
		}
		os.timedRead(p, f.devOff(run[0].idx*PageSize), len(run)*PageSize)
		i = j
	}
	doneAt := p.Now()
	for _, o := range mine {
		o.pg.io.Fire(doneAt)
		o.pg.io = nil
	}
	os.Cache.waitPage(p, target)
	return target
}

// bufferedWrite copies user data into cache pages and marks them dirty.
func (hf *File) bufferedWrite(p *engine.Proc, buf []byte, off uint64) {
	os, f := hf.os, hf.f
	for n := 0; n < len(buf); {
		cur := off + uint64(n)
		idx := cur / PageSize
		po := int(cur % PageSize)
		chunk := PageSize - po
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		var pg *cachedPage
		for {
			pg = os.Cache.find(p, f, idx)
			if pg == nil {
				if chunk == PageSize {
					// Full-page overwrite: no read-modify-write needed.
					var owner bool
					pg, owner = os.Cache.insertNew(p, f, idx)
					if owner {
						pg.io.Fire(p.Now())
						pg.io = nil
					}
				} else {
					pg = hf.fillPages(p, idx, idx+1)
				}
			}
			if pg.io != nil && !pg.io.Fired() {
				os.Cache.waitPage(p, pg)
				continue
			}
			break
		}
		os.Cache.touch(p, pg)
		pg.pins++
		copy(pg.frame.Data()[po:po+chunk], buf[n:n+chunk])
		p.AdvanceSystem(os.P.CopyToUser * uint64(chunk) / PageSize)
		os.Cache.markDirty(p, pg)
		pg.pins--
		os.Cache.throttleDirty(p)
		n += chunk
	}
}

// Namespace adapts the host OS to iface.Namespace. Files are opened in the
// given I/O mode; mappings use the Linux mmio path.
type Namespace struct {
	OS     *OS
	Direct bool
}

var _ iface.Namespace = (*Namespace)(nil)

// Create implements iface.Namespace.
func (ns *Namespace) Create(p *engine.Proc, name string, size uint64) iface.File {
	return ns.OS.OpenFile(ns.OS.FS.Create(p, name, size), ns.Direct)
}

// Open implements iface.Namespace.
func (ns *Namespace) Open(p *engine.Proc, name string) iface.File {
	return ns.OS.OpenFile(ns.OS.FS.Open(p, name), ns.Direct)
}

// Exists implements iface.Namespace.
func (ns *Namespace) Exists(name string) bool { return ns.OS.FS.Exists(name) }

// Delete implements iface.Namespace.
func (ns *Namespace) Delete(p *engine.Proc, name string) { ns.OS.FS.Delete(p, name) }

// Mmap implements iface.Namespace.
func (ns *Namespace) Mmap(p *engine.Proc, f iface.File, size uint64) iface.Mapping {
	hf, ok := f.(*File)
	if !ok {
		panic("host: Mmap of non-host file")
	}
	return ns.OS.Mmap(p, hf.f, size)
}
