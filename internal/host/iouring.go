package host

import (
	"fmt"
	"sort"

	"aquila/internal/sim/engine"
)

// IOURing models io_uring (§7.1), the paper's point of comparison for
// asynchronous explicit I/O: submissions are batched behind a single syscall
// and completions are reaped from shared memory with no syscall at all.
// The paper's discussion — async I/O raises throughput via batching but
// inflates tail latency — falls out of the queueing model.
//
// Aquila's §3.3 leaves "libaio or io_uring" device access as future work;
// this implementation provides it on the host side and the harness's
// `iouring` experiment evaluates it against synchronous direct I/O.
type IOURing struct {
	os    *OS
	f     *FSFile
	depth int

	// sq is the submission queue (filled without syscalls).
	sq []Sqe
	// cq holds completions ordered by completion time.
	cq []Cqe
	// inflight counts submitted-but-unreaped operations.
	inflight int

	// Stats.
	Submitted  uint64
	SyscallOps uint64 // io_uring_enter calls
}

// Sqe is one submission-queue entry.
type Sqe struct {
	Write    bool
	Off      uint64 // file offset
	Buf      []byte
	UserData uint64
}

// Cqe is one completion-queue entry.
type Cqe struct {
	UserData uint64
	DoneAt   uint64 // simulated completion time
	// Err is the device error for this operation (io_uring reports errors as
	// a negative cqe->res; here it is the typed device error). The operation
	// still occupied the device — timing is charged — but moved no data.
	Err error
}

// NewIOURing sets up a ring of the given depth over one file.
func NewIOURing(os *OS, f *FSFile, depth int) *IOURing {
	if depth <= 0 {
		depth = 128
	}
	return &IOURing{os: os, f: f, depth: depth}
}

// Prep queues an operation into the submission ring (shared memory: free).
func (r *IOURing) Prep(e Sqe) {
	if len(r.sq)+r.inflight >= r.depth {
		panic(fmt.Sprintf("host: io_uring depth %d exceeded", r.depth))
	}
	r.sq = append(r.sq, e)
}

// Enter submits the whole batch with one syscall (io_uring_enter) and
// returns immediately; device service times are computed per entry through
// the same queueing model as synchronous I/O.
func (r *IOURing) Enter(p *engine.Proc) {
	if len(r.sq) == 0 {
		return
	}
	r.SyscallOps++
	p.AdvanceSystem(r.os.C.Syscall + r.os.P.SyscallKernelPath)
	disk := r.os.FS.disk
	for _, e := range r.sq {
		// Per-entry kernel work: sqe fetch, validation, bio setup —
		// cheaper than a full syscall per op, which is the point.
		p.AdvanceSystem(r.os.P.BlockLayerSubmit / 2)
		delay, ferr := disk.Content.Check(p.Now(), r.f.devOff(e.Off), len(e.Buf), e.Write)
		if e.Write && ferr == nil {
			disk.Content.WriteAt(r.f.devOff(e.Off), e.Buf)
		}
		done := disk.Timing.Submit(p.Now(), len(e.Buf), e.Write)
		if disk.PMem {
			// pmem "devices" still move bytes with CPU copies; async
			// submission defers the copy to the kernel worker, which
			// the timing model folds into the completion time.
			done += r.os.C.MemcpyNoSIMD(len(e.Buf))
		}
		// A latency spike pushes the completion out; a failed operation
		// still holds the device for its full service time.
		done += delay
		if e.Write && ferr == nil {
			// Each SQE becomes durable (whole) at its own completion: a
			// crash before then discards it from the volatile tier, never
			// half-applies it.
			disk.Content.Persist(r.f.devOff(e.Off), len(e.Buf), done)
		}
		r.cq = append(r.cq, Cqe{UserData: e.UserData, DoneAt: done, Err: ferr})
		if !e.Write && ferr == nil {
			// The read lands in the caller's buffer by completion
			// time; content is copied now (simulation-safe: the
			// caller must not touch Buf before reaping the cqe).
			disk.Content.ReadAt(r.f.devOff(e.Off), e.Buf)
		}
		r.Submitted++
	}
	r.inflight += len(r.sq)
	r.sq = r.sq[:0]
	sort.Slice(r.cq, func(i, j int) bool { return r.cq[i].DoneAt < r.cq[j].DoneAt })
}

// PeekCqes reaps completions that have already finished — pure shared-memory
// polling, no syscall (the completion-path property of io_uring).
func (r *IOURing) PeekCqes(p *engine.Proc) []Cqe {
	p.AdvanceSystem(r.os.C.AtomicOp) // head/tail load
	n := 0
	for n < len(r.cq) && r.cq[n].DoneAt <= p.Now() {
		n++
	}
	out := append([]Cqe(nil), r.cq[:n]...)
	r.cq = r.cq[n:]
	r.inflight -= n
	return out
}

// WaitCqes blocks until at least n completions are available, then reaps
// everything completed.
func (r *IOURing) WaitCqes(p *engine.Proc, n int) []Cqe {
	if n > r.inflight {
		n = r.inflight
	}
	if n > 0 && len(r.cq) >= n {
		target := r.cq[n-1].DoneAt
		p.WaitUntil(target, engine.KindIOWait)
	}
	return r.PeekCqes(p)
}

// Inflight returns the number of unreaped operations.
func (r *IOURing) Inflight() int { return r.inflight }
