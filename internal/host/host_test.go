package host

import (
	"bytes"
	"testing"

	"aquila/internal/iface"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
)

const mib = 1 << 20

func newPMemOS(cacheBytes uint64) (*engine.Engine, *OS) {
	e := engine.New(engine.Config{NumCPUs: 8, Seed: 1})
	disk := NewPMemDisk("pmem0", device.NewPMem(256*mib, device.DefaultPMemConfig()))
	return e, NewOS(e, disk, cacheBytes)
}

func newNVMeOS(cacheBytes uint64) (*engine.Engine, *OS) {
	e := engine.New(engine.Config{NumCPUs: 8, Seed: 1})
	disk := NewNVMeDisk("nvme0", device.NewNVMe(256*mib, device.DefaultNVMeConfig()))
	return e, NewOS(e, disk, cacheBytes)
}

func run1(e *engine.Engine, fn func(p *engine.Proc)) {
	e.Spawn(0, "t0", fn)
	e.Run()
}

func TestFSCreateOpenDelete(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "a", 1*mib)
		if f.Size() != 1*mib || f.Capacity() < 1*mib {
			t.Errorf("size=%d cap=%d", f.Size(), f.Capacity())
		}
		if os.FS.Open(p, "a") != f {
			t.Error("open returned different file")
		}
		os.FS.Delete(p, "a")
		if os.FS.Exists("a") {
			t.Error("file still exists after delete")
		}
		// Extent must be reusable.
		g := os.FS.Create(p, "b", 200*mib)
		if g == nil {
			t.Error("could not reuse freed extent")
		}
	})
}

func TestFSExtentCoalescing(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		os.FS.Create(p, "a", 100*mib)
		os.FS.Create(p, "b", 100*mib)
		os.FS.Delete(p, "a")
		os.FS.Delete(p, "b")
		// After coalescing, a single 256 MB file must fit.
		os.FS.Create(p, "c", 256*mib)
	})
}

func TestDirectIORoundTrip(t *testing.T) {
	e, os := newNVMeOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.OpenFile(os.FS.Create(p, "f", 1*mib), true)
		data := []byte("direct i/o payload")
		f.Pwrite(p, data, 8192)
		got := make([]byte, len(data))
		f.Pread(p, got, 8192)
		if !bytes.Equal(got, data) {
			t.Errorf("got %q want %q", got, data)
		}
	})
}

func TestDirectIOChargesDeviceLatency(t *testing.T) {
	e, os := newNVMeOS(16 * mib)
	var elapsed uint64
	run1(e, func(p *engine.Proc) {
		f := os.OpenFile(os.FS.Create(p, "f", 1*mib), true)
		start := p.Now()
		f.Pread(p, make([]byte, 4096), 0)
		elapsed = p.Now() - start
	})
	lat := device.DefaultNVMeConfig().ReadLatency
	if elapsed < lat {
		t.Errorf("direct read took %d cycles, want >= device latency %d", elapsed, lat)
	}
	if elapsed > lat+20000 {
		t.Errorf("direct read took %d cycles, software overhead looks too high", elapsed)
	}
}

func TestBufferedReadWrite(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.OpenFile(os.FS.Create(p, "f", 1*mib), false)
		data := make([]byte, 10000)
		for i := range data {
			data[i] = byte(i)
		}
		f.Pwrite(p, data, 100)
		got := make([]byte, len(data))
		f.Pread(p, got, 100)
		if !bytes.Equal(got, data) {
			t.Error("buffered round trip mismatch")
		}
		if os.Cache.NrDirty() == 0 {
			t.Error("buffered write left no dirty pages")
		}
		f.Fsync(p)
		if os.Cache.NrDirty() != 0 {
			t.Errorf("dirty pages after fsync: %d", os.Cache.NrDirty())
		}
		// Content must be on the device now.
		direct := os.OpenFile(os.FS.Open(p, "f"), true)
		got2 := make([]byte, len(data))
		direct.Pread(p, got2, 100)
		if !bytes.Equal(got2, data) {
			t.Error("fsync did not persist data")
		}
	})
}

func TestMmapLoadStoreMsync(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 1*mib)
		m := os.Mmap(p, f, 1*mib)
		data := []byte("mapped bytes cross a page boundary ok")
		m.Store(p, 4090, data)
		got := make([]byte, len(data))
		m.Load(p, 4090, got)
		if !bytes.Equal(got, data) {
			t.Error("mapping round trip mismatch")
		}
		m.Msync(p)
		direct := os.OpenFile(f, true)
		got2 := make([]byte, len(data))
		direct.Pread(p, got2, 4090)
		if !bytes.Equal(got2, data) {
			t.Error("msync did not persist")
		}
	})
}

func TestFaultReadAround(t *testing.T) {
	e, os := newPMemOS(64 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 4*mib)
		m := os.Mmap(p, f, 4*mib)
		m.Load(p, 0, make([]byte, 8))
		// 4.14 read-around: one fault pulls a 32-page window.
		if got := os.Cache.Resident(); got != os.P.ReadAroundPages {
			t.Errorf("resident after one fault = %d, want %d", got, os.P.ReadAroundPages)
		}
		if f.MajorFaults() != 1 {
			t.Errorf("major faults = %d, want 1", f.MajorFaults())
		}
		// Touching a prefetched page is a minor fault, not major.
		m.Load(p, PageSize*5, make([]byte, 8))
		if f.MajorFaults() != 1 {
			t.Errorf("prefetched page took a major fault")
		}
	})
}

func TestMadviseRandomDisablesReadAround(t *testing.T) {
	e, os := newPMemOS(64 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 4*mib)
		m := os.Mmap(p, f, 4*mib)
		m.Advise(p, iface.AdviceRandom)
		m.Load(p, 0, make([]byte, 8))
		if got := os.Cache.Resident(); got != 1 {
			t.Errorf("resident after MADV_RANDOM fault = %d, want 1", got)
		}
	})
}

func TestMmapMissHeuristicDisablesReadAround(t *testing.T) {
	e, os := newPMemOS(64 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 64*mib)
		m := os.Mmap(p, f, 64*mib)
		// Fault window-aligned pages so no prefetched page is ever hit:
		// mmap_miss grows past MMAP_LOTSAMISS and read-around stops.
		stride := uint64(os.P.ReadAroundPages) * PageSize
		for i := uint64(0); i <= uint64(os.P.MmapLotsamiss); i++ {
			m.Load(p, i*stride%uint64(m.Size()-8), make([]byte, 8))
		}
		before := os.Cache.Resident()
		// This miss (in a never-touched window) must bring exactly one page.
		m.Load(p, 300*stride+8*PageSize, make([]byte, 8))
		if got := os.Cache.Resident() - before; got != 1 {
			t.Errorf("pages brought after LOTSAMISS = %d, want 1", got)
		}
	})
}

func TestWriteProtectFaultMarksDirty(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 1*mib)
		m := os.Mmap(p, f, 1*mib)
		// Read fault maps read-only; nothing dirty.
		m.Load(p, 0, make([]byte, 8))
		if os.Cache.NrDirty() != 0 {
			t.Fatalf("dirty after read fault: %d", os.Cache.NrDirty())
		}
		// First store takes the wp fault and dirties exactly one page.
		m.Store(p, 0, []byte{1})
		if os.Cache.NrDirty() != 1 {
			t.Fatalf("dirty after store: %d, want 1", os.Cache.NrDirty())
		}
		// Second store to the same page: no new dirty page.
		m.Store(p, 100, []byte{2})
		if os.Cache.NrDirty() != 1 {
			t.Fatalf("dirty after second store: %d, want 1", os.Cache.NrDirty())
		}
	})
}

func TestEvictionRespectsCapacity(t *testing.T) {
	cache := uint64(2 * mib) // 512 pages
	e, os := newPMemOS(cache)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 16*mib) // 8x the cache
		m := os.Mmap(p, f, 16*mib)
		buf := make([]byte, 8)
		for off := uint64(0); off+8 < 16*mib; off += PageSize {
			m.Load(p, off, buf)
		}
		if got, max := os.Cache.Resident(), int(cache/PageSize); got > max {
			t.Errorf("resident %d exceeds capacity %d", got, max)
		}
		if os.Cache.Evicted == 0 {
			t.Error("no evictions recorded under memory pressure")
		}
	})
}

func TestEvictionWritesBackDirtyData(t *testing.T) {
	cache := uint64(2 * mib)
	e, os := newPMemOS(cache)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 16*mib)
		m := os.Mmap(p, f, 16*mib)
		m.Store(p, 0, []byte("persist me"))
		// Flood the cache to force the dirty page out.
		buf := make([]byte, 8)
		for off := uint64(PageSize); off+8 < 16*mib; off += PageSize {
			m.Load(p, off, buf)
		}
		direct := os.OpenFile(f, true)
		got := make([]byte, 10)
		direct.Pread(p, got, 0)
		if !bytes.Equal(got, []byte("persist me")) {
			t.Errorf("evicted dirty page not written back: %q", got)
		}
	})
}

func TestConcurrentFaultsOnSamePageSingleIO(t *testing.T) {
	e, os := newNVMeOS(16 * mib)
	f := os.FS.Create(e.Spawn(0, "setup", func(p *engine.Proc) {}), "f", 1*mib)
	e.Run()
	for i := 0; i < 4; i++ {
		e.Spawn(i, "t", func(p *engine.Proc) {
			m := os.Mmap(p, f, 1*mib)
			m.Load(p, 0, make([]byte, 8))
		})
	}
	e.Run()
	if f.MajorFaults() == 0 {
		t.Fatal("no major fault")
	}
	reads := os.Disk().Content.Stats().Reads
	// One read-around window: the page content read happens once per page,
	// but only one *window* of device reads total.
	if reads > uint64(os.P.ReadAroundPages) {
		t.Errorf("device reads = %d, want <= %d (single window)", reads, os.P.ReadAroundPages)
	}
}

func TestSharedFileTreeLockContentionVisible(t *testing.T) {
	e, os := newPMemOS(64 * mib)
	f := os.FS.Create(e.Spawn(0, "setup", func(p *engine.Proc) {}), "f", 32*mib)
	e.Run()
	m := make([]*Mapping, 8)
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn(i, "t", func(p *engine.Proc) {
			m[i] = os.Mmap(p, f, 32*mib)
			buf := make([]byte, 8)
			for j := 0; j < 200; j++ {
				off := (uint64(i*200+j) * PageSize * uint64(os.P.ReadAroundPages)) % (32*mib - 8)
				off = off / PageSize * PageSize
				m[i].Load(p, off, buf)
			}
		})
	}
	e.Run()
	if st := f.treeLock.Stats(); st.Contended == 0 {
		t.Error("expected tree_lock contention with 8 threads on one file")
	}
}

func TestMunmapFlushesDirty(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 1*mib)
		m := os.Mmap(p, f, 1*mib)
		m.Store(p, 123, []byte("bye"))
		m.Munmap(p)
		direct := os.OpenFile(f, true)
		got := make([]byte, 3)
		direct.Pread(p, got, 123)
		if !bytes.Equal(got, []byte("bye")) {
			t.Errorf("munmap did not flush: %q", got)
		}
		if os.PT.Mapped() != 0 {
			t.Errorf("PT entries remain after munmap: %d", os.PT.Mapped())
		}
	})
}

func TestTwoMappingsShareCache(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 1*mib)
		m1 := os.Mmap(p, f, 1*mib)
		m2 := os.Mmap(p, f, 1*mib)
		m1.Store(p, 0, []byte("shared"))
		got := make([]byte, 6)
		m2.Load(p, 0, got)
		if !bytes.Equal(got, []byte("shared")) {
			t.Errorf("shared mapping read %q", got)
		}
		// The page is cached once.
		if f.MajorFaults() != 1 {
			t.Errorf("major faults = %d, want 1 (second mapping hits cache)", f.MajorFaults())
		}
	})
}

func TestDirtyThrottling(t *testing.T) {
	cache := uint64(1 * mib) // 256 pages; dirty limit = 25 pages
	e, os := newPMemOS(cache)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 1*mib)
		m := os.Mmap(p, f, 1*mib)
		one := []byte{1}
		for off := uint64(0); off < 1*mib; off += PageSize {
			m.Store(p, off, one)
		}
		limit := int(float64(os.Cache.Capacity())*os.P.DirtyRatio) + os.P.ReclaimBatch
		if got := os.Cache.NrDirty(); got > limit {
			t.Errorf("dirty pages %d exceed throttle threshold %d", got, limit)
		}
		if os.Cache.WrittenBk == 0 {
			t.Error("no writeback happened under dirty pressure")
		}
	})
}

func TestHypervisorGrantAndEPTFault(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		gpa := uint64(4 << 30)
		os.HV.GrantRegion(p, gpa, 2<<30)
		if !os.HV.EPTMapped(gpa) || !os.HV.EPTMapped(gpa+(1<<30)) {
			t.Error("granted region not EPT-mapped")
		}
		if os.HV.EPTMapped(gpa + (2 << 30)) {
			t.Error("beyond grant should be unmapped")
		}
		os.HV.EPTFault(p, gpa+(2<<30))
		if !os.HV.EPTMapped(gpa + (2 << 30)) {
			t.Error("EPT fault did not fill")
		}
		if os.HV.VMCalls == 0 || os.HV.EPTFaults != 1 {
			t.Errorf("hv stats: vmcalls=%d eptfaults=%d", os.HV.VMCalls, os.HV.EPTFaults)
		}
	})
}

func TestLinuxFaultCostInMemory(t *testing.T) {
	// Fig 8(a) calibration: a minor-ish fault (page in cache, pmem) costs
	// ~2724 cycles; the trap alone is 1287.
	e, os := newPMemOS(64 * mib)
	var perFault uint64
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 32*mib)
		m := os.Mmap(p, f, 32*mib)
		// Warm the cache so faults are cache-hits (no device I/O).
		buf := make([]byte, 8)
		for off := uint64(0); off < 32*mib; off += PageSize * uint64(os.P.ReadAroundPages) {
			m.Load(p, off, buf)
		}
		m.Munmap(p)
		m2 := os.Mmap(p, f, 32*mib)
		start := p.Now()
		const n = 1000
		for i := 0; i < n; i++ {
			m2.Load(p, uint64(i)*PageSize, buf)
		}
		perFault = (p.Now() - start) / n
	})
	if perFault < 2000 || perFault > 4000 {
		t.Errorf("in-cache Linux fault = %d cycles, want ~2724 (Fig 8a)", perFault)
	}
}

func TestStoreAfterWritebackNotLost(t *testing.T) {
	// Regression: dirty throttling used to clean (and write-protect) a
	// page between the fault that dirtied it and the store's data landing
	// in the frame — later stores without a wp fault were then discarded
	// at eviction. Write far more dirty data than the throttle limit and
	// verify every byte survives eviction.
	cache := uint64(256 << 10) // 64 pages, dirty limit ~6
	e, os := newPMemOS(cache)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 4*mib)
		m := os.Mmap(p, f, 4*mib)
		m.Advise(p, iface.AdviceRandom)
		data := make([]byte, 1<<20)
		for i := range data {
			data[i] = byte(i*7 + 3)
		}
		m.Store(p, 0, data)
		// Flood to evict everything.
		buf := make([]byte, 8)
		for off := uint64(1 << 20); off+8 < 4*mib; off += PageSize {
			m.Load(p, off, buf)
		}
		got := make([]byte, len(data))
		m.Load(p, 0, got)
		if !bytes.Equal(got, data) {
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("first corruption at byte %d (page %d)", i, i/PageSize)
				}
			}
		}
	})
}

func TestMultiProcessSharedFileMappings(t *testing.T) {
	// §2.1: shared file-backed mappings are the storage-sharing primitive.
	// Two processes map the same file; stores from one are visible to the
	// other through the shared page cache, while address spaces stay
	// separate.
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "shared", 1*mib)
		pr1 := os.DefaultProcess()
		pr2 := os.NewProcess()
		m1 := pr1.Mmap(p, f, 1*mib)
		m2 := pr2.Mmap(p, f, 1*mib)

		m1.Store(p, 100, []byte("from process 1"))
		got := make([]byte, 14)
		m2.Load(p, 100, got)
		if !bytes.Equal(got, []byte("from process 1")) {
			t.Errorf("process 2 read %q", got)
		}
		// One cached copy serves both processes.
		if f.MajorFaults() != 1 {
			t.Errorf("major faults = %d, want 1 (page shared)", f.MajorFaults())
		}
		// Separate page tables, same frame.
		e1, ok1 := pr1.PT.Lookup(m1.v.start)
		e2, ok2 := pr2.PT.Lookup(m2.v.start)
		if !ok1 || !ok2 {
			t.Fatal("both processes should have the page mapped")
		}
		if e1.Frame != e2.Frame {
			t.Error("processes map different frames for the same file page")
		}
		if pr1.PT.ASID() == pr2.PT.ASID() {
			t.Error("processes share an ASID")
		}

		// Write from process 2, visible in process 1 (and re-dirtying
		// works through the mkclean protocol across processes).
		m2.Msync(p)
		m2.Store(p, 100, []byte("from process 2"))
		m1.Load(p, 100, got)
		if !bytes.Equal(got, []byte("from process 2")) {
			t.Errorf("process 1 read %q after peer store", got)
		}
	})
}

func TestMultiProcessReclaimUnmapsBoth(t *testing.T) {
	cache := uint64(1 * mib) // 256 pages: heavy reclaim
	e, os := newPMemOS(cache)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "shared", 8*mib)
		pr2 := os.NewProcess()
		m1 := os.Mmap(p, f, 8*mib)
		m2 := pr2.Mmap(p, f, 8*mib)
		m1.Advise(p, iface.AdviceRandom)
		m2.Advise(p, iface.AdviceRandom)
		buf := make([]byte, 8)
		// Both processes touch everything; reclaim must unmap PTEs in
		// both page tables before recycling frames.
		for off := uint64(0); off+8 < 8*mib; off += PageSize {
			m1.Load(p, off, buf)
			m2.Load(p, off, buf)
		}
		if os.Cache.Resident() > int(cache/PageSize) {
			t.Errorf("resident %d over capacity", os.Cache.Resident())
		}
		// Data integrity across both views after heavy eviction.
		m1.Store(p, 0, []byte("p1"))
		m2.Load(p, 0, buf[:2])
		if !bytes.Equal(buf[:2], []byte("p1")) {
			t.Errorf("cross-process read after reclaim: %q", buf[:2])
		}
	})
}

func TestActiveInactiveScanResistance(t *testing.T) {
	// A hot buffered-read working set repeatedly accessed gets promoted to
	// the active list; a one-shot scan through a big file must not evict
	// it (the kernel's 2Q scan resistance).
	cache := uint64(1 * mib) // 256 pages
	e, os := newPMemOS(cache)
	run1(e, func(p *engine.Proc) {
		hot := os.OpenFile(os.FS.Create(p, "hot", 256<<10), false) // 64 pages
		cold := os.OpenFile(os.FS.Create(p, "cold", 8*mib), false)
		buf := make([]byte, 4096)
		// Touch the hot set twice: referenced, then promoted.
		for round := 0; round < 2; round++ {
			for off := uint64(0); off < 256<<10; off += 4096 {
				hot.Pread(p, buf, off)
			}
		}
		if os.Cache.NrActive() == 0 {
			t.Fatal("no pages promoted to the active list")
		}
		readsBefore := os.Disk().Content.Stats().Reads
		// One-shot scan, 8x the cache.
		for off := uint64(0); off+4096 <= 8*mib; off += 4096 {
			cold.Pread(p, buf, off)
		}
		// Re-read the hot set: most of it must still be cached.
		readsScan := os.Disk().Content.Stats().Reads
		for off := uint64(0); off < 256<<10; off += 4096 {
			hot.Pread(p, buf, off)
		}
		hotRefaults := os.Disk().Content.Stats().Reads - readsScan
		if hotRefaults > 16 { // < 25% of 64 pages refaulted
			t.Errorf("hot set lost to the scan: %d device reads on re-access", hotRefaults)
		}
		_ = readsBefore
	})
}

func TestReclaimSecondChance(t *testing.T) {
	// Referenced inactive pages get rotated once instead of evicted.
	cache := uint64(512 << 10) // 128 pages
	e, os := newPMemOS(cache)
	run1(e, func(p *engine.Proc) {
		f := os.OpenFile(os.FS.Create(p, "f", 4*mib), false)
		buf := make([]byte, 4096)
		for off := uint64(0); off+4096 <= 4*mib; off += 4096 {
			f.Pread(p, buf, off)
		}
		if os.Cache.Evicted == 0 {
			t.Fatal("no reclaim happened")
		}
		if os.Cache.Resident() > int(cache/PageSize) {
			t.Errorf("resident %d over capacity", os.Cache.Resident())
		}
	})
}

func TestMsyncRange(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 1*mib)
		m := os.Mmap(p, f, 1*mib)
		m.Store(p, 0, []byte("lo"))
		m.Store(p, 512<<10, []byte("hi"))
		if os.Cache.NrDirty() != 2 {
			t.Fatalf("dirty = %d", os.Cache.NrDirty())
		}
		// Sync only the low page: the high page stays dirty.
		m.MsyncRange(p, 0, 4096)
		if os.Cache.NrDirty() != 1 {
			t.Fatalf("dirty after ranged msync = %d, want 1", os.Cache.NrDirty())
		}
		direct := os.OpenFile(f, true)
		got := make([]byte, 2)
		direct.Pread(p, got, 0)
		if !bytes.Equal(got, []byte("lo")) {
			t.Error("ranged msync did not persist the target page")
		}
		m.MsyncRange(p, 512<<10, 4096)
		if os.Cache.NrDirty() != 0 {
			t.Fatalf("dirty = %d after syncing both", os.Cache.NrDirty())
		}
	})
}

func TestInvariantsAfterHeavyChurn(t *testing.T) {
	cache := uint64(1 * mib)
	e, os := newPMemOS(cache)
	f := os.FS.Create(e.Spawn(0, "setup", func(p *engine.Proc) {}), "churn", 8*mib)
	e.Run()
	for i := 0; i < 6; i++ {
		i := i
		e.Spawn(i, "t", func(p *engine.Proc) {
			m := os.Mmap(p, f, 8*mib)
			buf := make([]byte, 16)
			x := uint64(i + 1)
			for j := 0; j < 1200; j++ {
				x = x*6364136223846793005 + 1
				off := (x >> 17) % (8*mib - 16) / PageSize * PageSize
				if j%3 == 0 {
					m.Store(p, off, buf)
				} else {
					m.Load(p, off, buf)
				}
			}
			m.Msync(p)
		})
	}
	e.Run()
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFSDeleteDropsLiveMappingsPages(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "victim", 1*mib)
		m := os.Mmap(p, f, 1*mib)
		m.Store(p, 0, []byte("bye"))
		m.Munmap(p)
		os.FS.Delete(p, "victim")
		if os.Cache.Resident() != 0 {
			t.Errorf("resident pages after delete: %d", os.Cache.Resident())
		}
		if err := os.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBufferedPwriteGrowsSize(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.OpenFile(os.FS.Create(p, "grow", 1*mib), false)
		f.f.SetSize(0)
		f.Pwrite(p, []byte("abc"), 0)
		if f.Size() != 3 {
			t.Errorf("size = %d, want 3", f.Size())
		}
		f.Pwrite(p, []byte("defg"), 100)
		if f.Size() != 104 {
			t.Errorf("size = %d, want 104", f.Size())
		}
	})
}

func TestHostMprotectAndMremap(t *testing.T) {
	e, os := newPMemOS(16 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "f", 4*mib)
		m := os.Mmap(p, f, 1*mib)
		m.Store(p, 100, []byte("data"))
		m.Mprotect(p, true)
		got := make([]byte, 4)
		m.Load(p, 100, got)
		if !bytes.Equal(got, []byte("data")) {
			t.Error("read after mprotect failed")
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("store to RO mapping did not fault")
				}
			}()
			m.Store(p, 0, []byte{1})
		}()
		m.Mprotect(p, false)
		m.Store(p, 200, []byte("rw"))
		// Grow, verify content follows; then shrink and check bounds.
		m.Mremap(p, 3*mib)
		m.Load(p, 100, got)
		if !bytes.Equal(got, []byte("data")) {
			t.Error("data lost across mremap grow")
		}
		m.Store(p, 2*mib, []byte("tail"))
		m.Mremap(p, 1*mib)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("access past shrunk mapping did not fault")
				}
			}()
			m.Load(p, 2*mib, got)
		}()
		if err := os.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
