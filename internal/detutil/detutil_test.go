package detutil

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 2, "a": 1, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedKeys = %v, want %v", got, want)
	}
	if keys := SortedKeys(map[uint64]bool{}); len(keys) != 0 {
		t.Errorf("SortedKeys(empty) = %v, want empty", keys)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	type key struct{ fid, idx uint64 }
	m := map[key]string{
		{2, 0}: "x",
		{1, 5}: "y",
		{1, 2}: "z",
	}
	got := SortedKeysFunc(m, func(a, b key) bool {
		return a.fid < b.fid || (a.fid == b.fid && a.idx < b.idx)
	})
	want := []key{{1, 2}, {1, 5}, {2, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedKeysFunc = %v, want %v", got, want)
	}
}
