// Package detutil holds small helpers for keeping the simulation
// deterministic. Go randomizes map iteration order; any loop whose body's
// effects depend on visit order (advancing clocks, emitting spans, issuing
// I/O, building batches) must iterate a sorted key slice instead. The
// maporder analyzer (cmd/aqlint) flags such loops and points here.
package detutil

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SortedKeysFunc returns m's keys ordered by less, for key types that are
// not cmp.Ordered (structs, arrays).
func SortedKeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}
