package aquila

import (
	"math/rand"

	"aquila/internal/sim/device"
	simengine "aquila/internal/sim/engine"
)

// Crash-consistency API: deterministic crash-point injection, durable-image
// capture, and recovery into a fresh System.
//
// A CrashPlan arms the machine to die at a precise point — a simulated cycle,
// the Nth device content write, or entry to a named span such as "aq.msync".
// When the trigger fires every simulated thread unwinds without user-space
// cleanup and Run returns with Crashed() non-nil. CaptureCrash() then applies
// the device durability model (completed writes survive, in-flight writes are
// dropped or leave a seeded torn-sector prefix) and snapshots the byte-exact
// durable image. Recover() boots a new System from that image:
//
//	sys.InjectCrash(&aquila.CrashPlan{AtSpan: "aq.msync", SpanHit: 3})
//	sys.Do(workload)               // dies mid-third-msync
//	img := sys.CaptureCrash()
//	sys2 := aquila.Recover(sys.Opts, img)
//	sys2.Do(verify)                // sees exactly the durable prefix
//
// Recovery determinism contract: the simulated filesystem and blobstore keep
// their allocation metadata in host memory (conceptually journaled), and both
// allocate deterministically (first-fit extents, LIFO cluster stack) without
// zeroing media. A recovery procedure that re-creates files in the same order
// as the crashed run therefore finds each file's bytes at the same device
// offsets — which is how the Kreon recovery pass and the ablate-crash oracle
// re-attach to their data.
type (
	// CrashPlan is a seeded, declarative crash schedule (see device.CrashPlan).
	CrashPlan = device.CrashPlan
	// CrashInfo describes a crash that ended a run.
	CrashInfo = simengine.CrashInfo
	// CrashResult summarizes what the durability model did at the crash.
	CrashResult = device.CrashResult
)

// LoadCrashPlan reads a crash plan from a JSON fixture.
func LoadCrashPlan(path string) (*CrashPlan, error) { return device.LoadCrashPlan(path) }

// CrashImage is the byte-exact durable state a crash left behind, plus the
// metadata recovery needs. It is self-contained: the originating System can be
// discarded.
type CrashImage struct {
	// Cycle and Reason echo the trigger that killed the run.
	Cycle  uint64
	Reason string
	// Media is the durable device image (deep copy; block index -> content).
	Media map[uint64][]byte
	// Fingerprint is the FNV-1a hash of Media — the determinism witness:
	// same workload + same seed + same plan must reproduce it bit-exactly.
	Fingerprint uint64
	// DroppedBlocks / TornBlocks count in-flight writes discarded at the
	// crash and those that left a partial sector prefix.
	DroppedBlocks int
	TornBlocks    int
	// WBErrors carries per-file writeback errors no sync caller had observed
	// yet; Recover seeds the new runtime's errseq state from it so
	// exactly-once error reporting survives the restart.
	WBErrors map[string]error
}

// store returns the System's device content store (exactly one device exists).
func (s *System) store() *device.Store {
	if s.PMem != nil {
		return s.PMem.Store
	}
	return s.NVMe.Store
}

// InjectCrash arms a crash plan on the System: engine-side triggers (cycle,
// span) and the device-op trigger. An empty or nil plan disarms everything —
// running with an empty plan is bit-identical to running with none.
func (s *System) InjectCrash(plan *CrashPlan) {
	s.crashPlan = plan
	if plan.Empty() {
		s.Sim.ArmCrash(simengine.CrashConfig{})
		s.store().ArmCrashAtOp(0, nil)
		return
	}
	s.Sim.ArmCrash(simengine.CrashConfig{
		AtCycle: plan.AtCycle, AtSpan: plan.AtSpan, SpanHit: plan.SpanHit,
	})
	if plan.AtDeviceOp > 0 {
		s.store().ArmCrashAtOp(plan.AtDeviceOp, func() {
			s.Sim.CrashNow("device-op")
		})
	}
}

// Crashed returns the crash that ended the run, or nil.
func (s *System) Crashed() *CrashInfo { return s.Sim.Crashed() }

// CaptureCrash applies the durability model at the crash instant — staged
// writes whose completion had passed fold into media, the rest are discarded
// (optionally tearing a sector prefix under the plan's seeded policy) — and
// returns the resulting durable image. Panics if the System has not crashed.
func (s *System) CaptureCrash() *CrashImage {
	info := s.Sim.Crashed()
	if info == nil {
		panic("aquila: CaptureCrash on a system that has not crashed")
	}
	st := s.store()
	res := st.CrashedResult()
	if res == nil {
		seed, tear := int64(1), 0.0
		if s.crashPlan != nil {
			tear = s.crashPlan.TearProb
			if s.crashPlan.Seed != 0 {
				seed = s.crashPlan.Seed
			}
		}
		r := st.Crash(info.Cycle, rand.New(rand.NewSource(seed)), tear)
		res = &r
	}
	img := &CrashImage{
		Cycle:         info.Cycle,
		Reason:        info.Reason,
		Media:         st.CloneMedia(),
		Fingerprint:   st.Fingerprint(),
		DroppedBlocks: res.DroppedBlocks,
		TornBlocks:    res.TornBlocks,
	}
	if s.RT != nil {
		img.WBErrors = s.RT.WBErrorSnapshot()
	}
	return img
}

// Recover boots a fresh System from a crash image: the device adopts the
// durable media before anything touches it, the page cache starts cold, and
// the Aquila runtime re-seeds per-file errseq state from the image so
// unreported pre-crash writeback errors surface exactly once after restart.
// opts is typically the crashed System's Opts (same device, cache, seed).
func Recover(opts Options, img *CrashImage) *System {
	opts.restoreMedia = img.Media
	opts.restoreWBErr = img.WBErrors
	opts.recovered = true
	return New(opts)
}
