// multiprocess: shared file-backed mappings across processes — the storage
// sharing primitive §2.1 builds on. Two simulated processes map the same file
// on the Linux host; stores from one are immediately visible to the other
// through the shared page cache, while each keeps its own page table, ASID
// and mm_cpumask.
//
//	go run ./examples/multiprocess
package main

import (
	"fmt"

	"aquila"
	"aquila/internal/host"
)

func main() {
	sys := aquila.New(aquila.Options{
		Mode:       aquila.ModeLinuxMmap,
		Device:     aquila.DevicePMem,
		CacheBytes: 32 << 20,
		CPUs:       8,
	})

	var f *host.FSFile
	var producer, consumer *host.Mapping
	sys.Do(func(p *aquila.Proc) {
		f = sys.Host.FS.Create(p, "shm", 4<<20)
		p1 := sys.Host.DefaultProcess()
		p2 := sys.Host.NewProcess()
		producer = p1.Mmap(p, f, 4<<20)
		consumer = p2.Mmap(p, f, 4<<20)
	})

	// Producer (process 1, CPU 0) writes records; consumer (process 2,
	// CPU 4) polls and reads them through its own address space.
	const records = 64
	sys.Sim.Spawn(0, "producer", func(p *aquila.Proc) {
		for i := 0; i < records; i++ {
			msg := fmt.Sprintf("record-%02d", i)
			producer.Store(p, uint64(i)*4096, []byte(msg))
			p.AdvanceUser(5000)
		}
		producer.Msync(p)
	})
	seen := 0
	sys.Sim.Spawn(4, "consumer", func(p *aquila.Proc) {
		buf := make([]byte, 9)
		for i := 0; i < records; i++ {
			for {
				consumer.Load(p, uint64(i)*4096, buf)
				if buf[0] != 0 {
					break
				}
				p.SleepIO(2000) // poll
			}
			seen++
		}
	})
	sys.Sim.Run()

	fmt.Printf("consumer observed %d/%d records through the shared page cache\n", seen, records)
	fmt.Printf("file faulted once per page in total: %d major faults\n", f.MajorFaults())
	fmt.Printf("simulated time: %.2f us\n", sys.Seconds()*1e6)
}
