// kvstore: run the RocksDB-like LSM key-value store over three I/O paths —
// Linux direct I/O + user-space cache, Linux mmap, and Aquila mmio — and
// compare YCSB-C throughput, the comparison of the paper's Figure 5.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"

	"aquila"
	"aquila/internal/kvs/lsm"
	"aquila/internal/ycsb"
)

func run(name string, mode aquila.Mode, io lsm.IOMode) {
	const (
		cache   = 32 << 20
		records = 20000
		ops     = 4000
	)
	sys := aquila.New(aquila.Options{
		Mode: mode, Device: aquila.DevicePMem,
		CacheBytes: cache, DeviceBytes: 512 << 20,
	})
	var db *lsm.DB
	sys.Do(func(p *aquila.Proc) {
		db = lsm.Open(p, sys.Sim, lsm.Options{
			NS: sys.NS, Mode: io, BlockCacheBytes: cache, DisableWAL: true,
		})
		db.BulkLoad(p, records, 1000)
	})
	// Warm to steady state (caches, PTEs) before measuring, as the paper's
	// runs do.
	sys.Do(func(p *aquila.Proc) {
		for id := uint64(0); id < records; id++ {
			db.Get(p, ycsb.KeyBytes(id))
		}
	})
	var done uint64
	elapsed := sys.Run(4, func(t int, p *aquila.Proc) {
		g := ycsb.NewGenerator(ycsb.Config{
			Workload: ycsb.WorkloadC, Records: records, ValueSize: 1000,
			Seed: int64(t) + 1,
		})
		res := ycsb.RunThread(p, db, g, ops)
		done += res.Ops
	})
	fmt.Printf("%-22s %8.1f Kops/s  (4 threads, YCSB-C, 1 KB values)\n",
		name, aquila.ThroughputOpsPerSec(done, elapsed)/1e3)
}

func main() {
	run("read/write + cache", aquila.ModeLinuxDirect, lsm.IODirectCached)
	run("Linux mmap", aquila.ModeLinuxMmap, lsm.IOMmap)
	run("Aquila mmio", aquila.ModeAquila, lsm.IOMmap)
}
