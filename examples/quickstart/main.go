// Quickstart: boot an Aquila system over a pmem device, map a file, do
// memory-mapped I/O through the ring-0 mmio path, and inspect what the
// runtime did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"aquila"
)

func main() {
	// A 32-CPU machine with a 64 MB DRAM I/O cache over DRAM-backed pmem,
	// using the DAX engine (the paper's preferred pmem configuration).
	sys := aquila.New(aquila.Options{
		Mode:       aquila.ModeAquila,
		Device:     aquila.DevicePMem,
		CacheBytes: 64 << 20,
	})

	sys.Do(func(p *aquila.Proc) {
		// Create a 16 MB file and map it — the mmap-compatible API of §3.
		f := sys.NS.Create(p, "data", 16<<20)
		m := sys.NS.Mmap(p, f, 16<<20)

		// Stores fault pages in (read-only first, then a write-protect
		// fault marks them dirty), all handled in non-root ring 0.
		m.Store(p, 4096, []byte("hello, memory-mapped storage"))

		// Touch a working set so the per-fault numbers below are
		// steady-state rather than one-time setup costs.
		buf8 := make([]byte, 8)
		for off := uint64(0); off < m.Size(); off += 4096 {
			m.Load(p, off, buf8)
		}

		// Loads on cached pages are pure hardware translation: no
		// software cost at all.
		buf := make([]byte, 28)
		m.Load(p, 4096, buf)
		fmt.Printf("read back: %q\n", buf)

		// msync is intercepted in ring 0 — a function call, not a
		// syscall — and writes dirty pages back sorted by device offset.
		m.Msync(p)
	})

	rt := sys.RT
	fmt.Printf("major faults:   %d\n", rt.Stats.MajorFaults)
	fmt.Printf("wp faults:      %d (dirty tracking)\n", rt.Stats.WPFaults)
	fmt.Printf("written back:   %d pages\n", rt.Stats.WrittenBack)
	fmt.Printf("simulated time: %.2f us at 2.4 GHz\n", sys.Seconds()*1e6)
	fmt.Println("\nfault-path cycle breakdown:")
	faults := rt.Stats.MajorFaults + rt.Stats.MinorFaults + rt.Stats.WPFaults
	fmt.Print(rt.Break.Table(faults))
}
