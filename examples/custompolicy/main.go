// custompolicy: the customization the paper's contribution 1 promises —
// applications plug their own eviction and readahead policies into Aquila's
// mmio path. This example installs a scan-resistant policy that evicts
// pages of a designated "streaming" file first, protecting the random-access
// working set of a second file, and compares hit rates against default LRU.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"

	"aquila"
	"aquila/internal/core"
)

// workload touches a hot file randomly while a cold file is streamed
// through sequentially — the classic scan-pollution pattern.
func workload(sys *aquila.System, hot, cold aquila.Mapping) (hotFaults uint64) {
	before := sys.RT.Stats.MajorFaults
	sys.Do(func(p *aquila.Proc) {
		buf := make([]byte, 8)
		// Warm the hot set.
		for off := uint64(0); off < hot.Size(); off += 4096 {
			hot.Load(p, off, buf)
		}
		hotWarm := sys.RT.Stats.MajorFaults
		// Interleave: stream the cold file, touch the hot set.
		for i := 0; i < 4; i++ {
			for off := uint64(0); off < cold.Size(); off += 4096 {
				cold.Load(p, off, buf)
			}
			for off := uint64(0); off < hot.Size(); off += 4096 {
				hot.Load(p, (off*7919)%(hot.Size()-8)/4096*4096, buf)
			}
		}
		_ = hotWarm
	})
	return sys.RT.Stats.MajorFaults - before
}

func build(scanResistant bool) uint64 {
	sys := aquila.New(aquila.Options{
		Mode: aquila.ModeAquila, Device: aquila.DevicePMem,
		CacheBytes: 8 << 20, DeviceBytes: 256 << 20,
	})
	var hot, cold aquila.Mapping
	sys.Do(func(p *aquila.Proc) {
		hf := sys.NS.Create(p, "hot", 6<<20)
		cf := sys.NS.Create(p, "cold-stream", 32<<20)
		hot = sys.NS.Mmap(p, hf, 6<<20)
		cold = sys.NS.Mmap(p, cf, 32<<20)
		cold.Advise(p, aquila.AdviceSequential) // readahead for the scan
	})
	if scanResistant {
		// Bias victim selection toward the streaming file's pages,
		// protecting the random-access working set.
		sys.RT.Prefer = func(pg *core.Page) bool {
			return pg.FileName() == "cold-stream"
		}
	}
	return workload(sys, hot, cold)
}

func main() {
	lru := build(false)
	custom := build(true)
	fmt.Printf("major faults with default LRU:          %d\n", lru)
	fmt.Printf("major faults with scan-resistant policy: %d\n", custom)
	fmt.Printf("custom policy avoided %.1f%% of the faults\n",
		100*(1-float64(custom)/float64(lru)))
}
