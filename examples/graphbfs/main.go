// graphbfs: extend an application's heap over fast storage (§6.2). A Ligra-
// style BFS runs over an R-MAT graph whose heap lives in a memory-mapped
// file eight times larger than DRAM, with only the allocator changed — the
// paper's "large datasets without application redesign" scenario.
//
//	go run ./examples/graphbfs
package main

import (
	"fmt"

	"aquila"
	"aquila/internal/graph"
	"aquila/internal/sim/cpu"
	"aquila/internal/sim/engine"
)

func main() {
	const vertices = 1 << 14
	raw := graph.RMAT(graph.RMATConfig{Vertices: vertices, EdgeFactor: 10, Seed: 7})
	edges := graph.Symmetrize(raw)
	heapBytes := uint64(vertices*12+len(edges)*4)*5/4 + (1 << 20)

	// DRAM-only baseline: the heap is ordinary memory.
	e := engine.New(engine.Config{NumCPUs: 32, Seed: 1})
	memHeap := graph.NewMemHeap(heapBytes * 2)
	var g *graph.Graph
	e.Spawn(0, "build", func(p *engine.Proc) { g = graph.Build(p, memHeap, vertices, edges) })
	e.Run()
	dram := graph.RunBFS(e, g, 0, 8)

	// Heap over a mapped file with a DRAM cache 8x smaller than the data.
	for _, mode := range []struct {
		name string
		m    aquila.Mode
	}{{"Linux mmap", aquila.ModeLinuxMmap}, {"Aquila", aquila.ModeAquila}} {
		sys := aquila.New(aquila.Options{
			Mode: mode.m, Device: aquila.DevicePMem,
			CacheBytes: heapBytes / 8, DeviceBytes: heapBytes*2 + (64 << 20),
		})
		var mg *graph.Graph
		sys.Do(func(p *aquila.Proc) {
			f := sys.NS.Create(p, "heap", heapBytes*2)
			m := sys.NS.Mmap(p, f, heapBytes*2)
			m.Advise(p, aquila.AdviceRandom)
			mg = graph.Build(p, graph.NewMappedHeap(m), vertices, edges)
		})
		res := graph.RunBFS(sys.Sim, mg, 0, 8)
		fmt.Printf("%-12s BFS: %6.2f ms  (%d rounds, %d vertices reached, %.1fx DRAM-only)\n",
			mode.name, cpu.CyclesToSeconds(res.ElapsedCycles)*1e3,
			res.Rounds, res.Visited,
			float64(res.ElapsedCycles)/float64(dram.ElapsedCycles))
	}
	fmt.Printf("%-12s BFS: %6.2f ms  (%d rounds, %d vertices reached)\n",
		"DRAM-only", cpu.CyclesToSeconds(dram.ElapsedCycles)*1e3, dram.Rounds, dram.Visited)
}
